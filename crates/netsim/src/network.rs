//! Flow-level communication model.
//!
//! A [`Network`] owns the [`Platform`] and the set of data transfers (flows)
//! currently in flight. Two sharing modes are provided:
//!
//! * [`SharingMode::Bottleneck`] — the analytic model SimGrid's MSG module
//!   uses by default for trace replay: a transfer of `size` bytes along a
//!   route takes `Σ latency + size / bottleneck_bandwidth`, independently of
//!   other traffic. Cheap and adequate when flows rarely overlap.
//! * [`SharingMode::MaxMinFair`] — concurrent flows crossing the same link
//!   share its capacity according to max–min fairness (progressive filling).
//!   Rates are recomputed whenever a flow starts or finishes. This is the
//!   model to use when many peers hammer a shared backbone (LAN Stage-2B) or
//!   a DSLAM uplink (xDSL Stage-2A).
//!
//! Control-plane messages of the P2PDC overlay are small and latency-bound;
//! [`Network::message_delay`] provides their delivery delay analytically
//! without materialising a flow.
//!
//! # The incremental max–min engine
//!
//! The first version of this module recomputed max–min fairness from scratch
//! with freshly allocated `HashMap`s on every flow start/finish, and bumped a
//! *global* version counter on each rebalance — which invalidated and
//! rescheduled the completion event of **every** active flow even when only
//! one flow's rate had changed, piling dead entries onto the event heap at a
//! rate of O(F) per flow arrival/departure (O(F²) per busy period).
//!
//! The current engine keeps the same observable behaviour (identical
//! simulated timestamps, deliveries and statistics) with an incremental
//! design:
//!
//! * **Slab flow table** — flows live in a `Vec` of slots addressed by the
//!   low 32 bits of [`FlowId`]; the high 32 bits carry the slot *generation*
//!   ([`FlowId::from_parts`]) so recycled slots reject ids of their previous
//!   occupants in O(1) without any hashing.
//! * **Persistent link incidence** — `link_flows` maps every directed link
//!   (indexed like [`Platform::links`]) to the active flows crossing it,
//!   updated incrementally on activate/finish instead of being rebuilt per
//!   rebalance. Swap-remove with back-pointers (`FlowState::link_pos`)
//!   keeps removal O(route length).
//! * **Flat-array progressive filling** — the rate recomputation walks
//!   epoch-stamped per-link capacity/unfixed-count arrays; no allocation
//!   after the first rebalance at a given scale.
//! * **Bucket-queue bottleneck selection** — each progressive-filling
//!   iteration pops the minimum-fair-share link straight out of a monotone
//!   bucket queue (the `fairshare` module) instead of re-scanning every
//!   touched link, cutting the inner loop from O(touched²) to
//!   O(changed · log L) per rebalance. The previous linear scan is retained
//!   behind [`RebalanceEngine::ScanPerEvent`] as a differential baseline.
//! * **Batched same-timestamp rebalances** — flow arrivals and departures at
//!   the same simulated instant are coalesced: instead of recomputing the
//!   fixpoint per event, the network schedules one [`NetEvent::Rebalance`]
//!   at the current time (the scheduler's FIFO order for equal timestamps
//!   places it after every already-pending event of that instant) and runs a
//!   single batched pass over the union of dirty links. Per-flow versions
//!   (below) make this safe, and because zero simulated time elapses inside
//!   a batch, delivery timestamps are *identical* to per-event execution.
//! * **Per-flow versions** — a rebalance bumps the version of (and
//!   reschedules a completion for) *only* the flows whose rate actually
//!   changed. Flows untouched by the rebalance keep their scheduled
//!   completion event, which stays exact because their rate is unchanged.
//!   Progress (`remaining` bytes) is likewise brought up to date lazily, only
//!   when a flow's rate is about to change — between rate changes the drain
//!   is linear, so nothing is lost.
//! * **Automatic event-heap compaction** — when a reschedule obsoletes a
//!   pending completion event the network calls [`Scheduler::mark_dead`], so
//!   the heap's live/dead ratio is observable ([`Scheduler::dead_pending`]).
//!   After each rebalance the network applies its [`CompactionPolicy`]
//!   (default: compact once dead entries outnumber live ones four to one)
//!   and drops the stale entries itself; [`Network::auto_compactions`]
//!   counts the passes, and [`Network::compact_events`] remains available as
//!   a manual escape hatch.
//! * **Dirty-component–limited recompute** —
//!   [`RebalanceEngine::DirtyComponent`] goes one step further than
//!   batching: the max–min fixpoint factors over the connected components of
//!   the "shares a flow" relation on links, so a flush only re-runs
//!   progressive filling over the component(s) containing links actually
//!   touched since the last flush. A union–find over links with per-component
//!   flow lists (the `component` module) tracks the partition incrementally;
//!   flows in untouched components keep their rates *and their scheduled
//!   completion events*, cutting the per-flush cost from O(active) to
//!   O(dirty component). Because the fill tie-breaks equal shares by link
//!   index (independent of seeding order), a clean component re-derives
//!   bit-identical rates, so this produces delivery timestamps identical to
//!   [`RebalanceEngine::BucketedBatched`] — a property the differential
//!   suite in `tests/props.rs` enforces.
//! * **Parallel sharded flushes** — [`RebalanceEngine::ParallelShard`]
//!   adds one more step: a flush
//!   spanning several dirty components bins whole components onto scoped
//!   worker threads, each filling against private scratch (its own
//!   bottleneck queue and a thread-local rate buffer — no shared mutable
//!   network state), followed by one deterministic merge and a reschedule
//!   walk in global active order. Component independence plus the pure
//!   per-component fill make shard results bit-identical to
//!   [`RebalanceEngine::DirtyComponent`] at every thread count — enforced
//!   five ways by `tests/props.rs` and pinned across worker budgets by
//!   `tests/parallel.rs`. Flushes below a work threshold (or with a single
//!   dirty component) fall back to the single-threaded flush verbatim.
//! * **Warm-start filling** — the default engine
//!   ([`RebalanceEngine::WarmStart`]) attacks the one case component
//!   factoring cannot help: churn *inside* a single component. After each
//!   component fill it persists the bottleneck sequence — which link
//!   saturated in which round, at what share, freezing which flows — in a
//!   per-component `FillRecord` keyed by the union–find component epoch.
//!   The next flush of that component binary-searches the recorded sequence
//!   for the first saturation level the changed flows' path links can
//!   affect, keeps every flow frozen strictly below that level untouched
//!   (rates *and* scheduled completions — those flows are not even walked),
//!   and resumes progressive filling from that level with the prefix's
//!   residual capacities restored bit-exactly from the record. Records are
//!   invalidated by component merges and region rebuilds (the component
//!   epoch moves), by dense-flush fast-path takeovers, and explicitly via
//!   [`Network::invalidate_fill_records`] (topology change, scripted mass
//!   failure). Multi-component warm flushes shard across worker threads
//!   like [`RebalanceEngine::ParallelShard`] — each shard warm-starts its
//!   own component. Results stay bit-identical to every other engine: the
//!   five-way differential suite in `tests/props.rs` enforces it.
//!
//! This diverges from the seed's *progressive filling loop over hash maps*
//! only in mechanics, not in the fixed point it computes: the per-link
//! bottleneck shares are identical, so simulated results are too.

use crate::component::LinkComponents;
use crate::event::Scheduler;
use crate::fairshare::FairShareQueue;
use crate::platform::{Platform, Route};
use crate::pool::{EngineConfig, SplitScratch, WorkerPool};
use p2p_common::{DataSize, FlowId, HostId, SimDuration, SimTime};
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How concurrent flows share link capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SharingMode {
    /// Independent flows, bottleneck-bandwidth analytic model.
    Bottleneck,
    /// Max–min fair sharing of every link's capacity.
    MaxMinFair,
}

/// Events the network schedules for itself. Embed this in the world's event
/// type by implementing [`NetWorldEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NetEvent {
    /// The flow's latency has elapsed; it now competes for bandwidth.
    FlowActivate {
        /// The flow in question.
        flow: FlowId,
    },
    /// A flow may have finished draining (stale if `version` is outdated).
    FlowCompletion {
        /// The flow in question.
        flow: FlowId,
        /// The flow's rate version this event was scheduled under; the event
        /// is stale if the flow's rate changed since.
        version: u64,
    },
    /// Run the rate rebalance deferred by the current simulated instant.
    ///
    /// Under [`RebalanceEngine::BucketedBatched`] every flow arrival or
    /// departure *requests* a rebalance instead of performing one; the first
    /// request at a given instant schedules this sentinel at the current
    /// time, and the scheduler's FIFO order for equal timestamps guarantees
    /// it fires after every event of that instant that was already pending —
    /// coalescing all of them into one batched pass.
    Rebalance,
}

/// World event types that embed [`NetEvent`]s.
///
/// [`Network::on_event`] needs to recover the network's own events from the
/// world's event alphabet — both to react to them and to recognise, during an
/// automatic heap compaction, which pending entries are stale. Worlds
/// therefore implement this trait on their event enum:
///
/// ```
/// use netsim::{NetEvent, NetWorldEvent};
///
/// #[derive(Debug, Clone, Copy)]
/// enum Ev {
///     Net(NetEvent),
///     Timer { id: u32 },
/// }
///
/// impl From<NetEvent> for Ev {
///     fn from(e: NetEvent) -> Self {
///         Ev::Net(e)
///     }
/// }
/// impl NetWorldEvent for Ev {
///     fn as_net_event(&self) -> Option<NetEvent> {
///         match self {
///             Ev::Net(e) => Some(*e),
///             Ev::Timer { .. } => None,
///         }
///     }
/// }
///
/// assert!(Ev::from(NetEvent::Rebalance).as_net_event().is_some());
/// assert!(Ev::Timer { id: 0 }.as_net_event().is_none());
/// ```
pub trait NetWorldEvent: From<NetEvent> {
    /// The embedded network event, if this event is one.
    fn as_net_event(&self) -> Option<NetEvent>;
}

/// How the network reacts to flow arrivals and departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RebalanceEngine {
    /// Recompute the max–min fixpoint immediately on every arrival and
    /// departure, selecting each bottleneck with a linear scan over the
    /// touched links — the PR 1 behaviour, kept as a comparison baseline
    /// and for tests that need one rebalance per event.
    ScanPerEvent,
    /// Coalesce all rebalances requested at the same simulated instant into
    /// one batched pass (via the [`NetEvent::Rebalance`] sentinel) and pop
    /// bottlenecks from the monotone bucket queue. Identical simulated
    /// results, asymptotically cheaper. The PR 2 default, retained as the
    /// differential baseline of the dirty-component engine.
    BucketedBatched,
    /// Everything [`RebalanceEngine::BucketedBatched`] does, plus the flush
    /// is limited to the connected component(s) of links touched by flow
    /// arrivals and departures since the last flush: a union–find over the
    /// link→flow incidence tracks components incrementally, and untouched
    /// components keep their rates and scheduled completions verbatim.
    /// Identical simulated results (bit-for-bit — see `tests/props.rs`),
    /// asymptotically cheaper again when traffic is not globally coupled.
    /// The PR 3 default, retained as the single-threaded differential
    /// baseline of the parallel shard engine.
    DirtyComponent,
    /// Everything [`RebalanceEngine::DirtyComponent`] does, plus flushes
    /// spanning several dirty components shard those components across
    /// worker threads: each shard re-runs progressive filling for its
    /// components with its own bottleneck queue, writing rates into a
    /// thread-local buffer (no shared mutable network state), and one
    /// deterministic merge pass applies the deltas and reschedules
    /// completions in global active order. Because the fill is a pure
    /// function of each component's flow set (link-index tie-breaking) and
    /// components share no links or flows, shard results are bit-identical
    /// to [`RebalanceEngine::DirtyComponent`] at **every** thread count —
    /// a property `tests/props.rs` enforces five ways. Flushes below the
    /// work threshold ([`EngineConfig::parallel_threshold`]) or with a
    /// single dirty component fall back to the single-threaded flush
    /// verbatim. The PR 4 default, retained as the cold-fill differential
    /// baseline of the warm-start engine.
    ParallelShard,
    /// Everything [`RebalanceEngine::ParallelShard`] does, plus every
    /// component fill persists its bottleneck sequence (saturation order,
    /// share levels, frozen-flow sets, per-link residual-capacity history)
    /// in a per-component `FillRecord` keyed by the union–find component
    /// epoch. A later flush of the same component resumes progressive
    /// filling from the first recorded saturation level the changed flows'
    /// path links can affect instead of from share level zero: flows frozen
    /// strictly below that level keep their rates and scheduled completions
    /// without being touched (or walked) at all, and the fill replays only
    /// the suffix, seeded with the prefix's residual capacities restored
    /// bit-exactly from the record. Because the fill is a pure function of
    /// the flow set (link-index tie-breaking), the warm result is
    /// bit-identical to a cold fill — a property the five-way differential
    /// suite in `tests/props.rs` enforces. Records die on component merges
    /// and rebuilds (epoch mismatch), dense-flush takeovers, and
    /// [`Network::invalidate_fill_records`]; an invalidated component
    /// simply cold-fills once, re-recording as it goes. The default.
    #[default]
    WarmStart,
}

/// When the network compacts the scheduler's event heap on its own.
///
/// Superseded completion events stay on the heap until they fire or are
/// compacted away; this policy bounds how many may accumulate. After every
/// rebalance the network compacts as soon as both triggers hold:
///
/// * `dead > live × dead_per_live` — the heap is mostly corpses, and
/// * `dead ≥ min_dead` — it is large enough for a compaction pass to be
///   worth its O(pending) cost.
///
/// The pass preserves the firing order of live events, so it is safe at any
/// point of a simulation. [`Network::auto_compactions`] counts the passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompactionPolicy {
    /// Dead entries tolerated per live entry before compacting (default 4).
    pub dead_per_live: u32,
    /// Minimum number of dead entries before compacting at all (default 64).
    pub min_dead: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            dead_per_live: 4,
            min_dead: 64,
        }
    }
}

/// Telemetry of the component-tracking engines' flushes
/// ([`RebalanceEngine::DirtyComponent`] and
/// [`RebalanceEngine::ParallelShard`]), for diagnostics and benchmark
/// analysis ([`Network::flush_stats`]). All zero under the other engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlushStats {
    /// Dirty flushes run (rebalances that found at least one dirty link).
    pub flushes: u64,
    /// Flushes that took the dense fast path: dirty components covered at
    /// least 3/4 of the attached flows (and the deferred-GC debt was low),
    /// so no list was gathered — the flush walked the active set directly,
    /// like the full engines.
    pub fast_flushes: u64,
    /// Flushes that rebuilt exact connectivity for their region.
    pub rebuilds: u64,
    /// Total flows recomputed across all flushes (the full engines would
    /// have recomputed `flushes × active` instead).
    pub flushed_flows: u64,
    /// Flushes whose fill ran sharded across worker threads (only under
    /// [`RebalanceEngine::ParallelShard`] and [`RebalanceEngine::WarmStart`],
    /// and only when the flush spanned several dirty components and cleared
    /// the work threshold).
    pub parallel_flushes: u64,
    /// Total shards dispatched to workers across all parallel flushes.
    pub shards_dispatched: u64,
    /// Component fills that resumed from a recorded saturation prefix
    /// instead of share level zero (only under
    /// [`RebalanceEngine::WarmStart`]). Cold fills — no record, or a record
    /// invalidated since — are not counted, even though they record.
    pub warm_starts: u64,
    /// Flows kept frozen from recorded prefixes across all warm starts:
    /// their rates and scheduled completions were preserved without the
    /// flush walking them at all (the full engines would have re-derived
    /// and compared every one).
    pub warm_prefix_flows: u64,
    /// Sum of the resume levels (recorded saturation rounds skipped) across
    /// all warm starts; `warm_resume_rounds / warm_starts` is the mean
    /// recorded-prefix depth a warm start preserved.
    pub warm_resume_rounds: u64,
    /// Fill records dropped because a dense-flush fast path took over their
    /// component (the dense path recomputes without per-component
    /// attribution, so the records it bypasses can no longer describe the
    /// last fill) or because [`Network::invalidate_fill_records`] was
    /// called.
    pub warm_invalidations: u64,
    /// Task sets handed to the persistent worker pool: shard/warm-task
    /// fan-outs plus work-stolen split rounds. Deterministic for a given
    /// [`EngineConfig`] — the dispatch decisions
    /// depend on the logical worker budget, never on the machine.
    pub flushes_dispatched: u64,
    /// Work-stolen split rounds: saturation rounds of one oversized
    /// component whose per-link fill was split across the pool's workers
    /// (engaged when the bottleneck link carries at least
    /// [`EngineConfig::split_min_flows`](crate::EngineConfig::split_min_flows)
    /// unfixed flows). Deterministic, like `flushes_dispatched` — a split
    /// round is counted even when the pool executes it serially for lack
    /// of spare cores.
    pub steals: u64,
    /// Pool worker condvar wakeups served. **Scheduling-dependent**: varies
    /// run to run and machine to machine, so it is excluded from
    /// checkpoints (always restored as 0) and must never be compared across
    /// runs. Purely an "is the pool actually parking/waking" diagnostic.
    pub park_wakeups: u64,
}

/// Notification that a flow has been fully delivered to its destination host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDelivery {
    /// The completed flow.
    pub flow: FlowId,
    /// Caller-supplied token identifying what this flow carried.
    pub token: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Payload size.
    pub size: DataSize,
}

/// Aggregate transfer statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Flows started.
    pub flows_started: u64,
    /// Flows delivered.
    pub flows_completed: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Control-plane messages routed through [`Network::message_delay`].
    pub control_messages: u64,
    /// Bytes carried per directed link (indexed like `Platform::links`).
    pub link_bytes: Vec<u64>,
}

/// Heap-byte telemetry of the flow engine's per-flow structures
/// ([`Network::memory_footprint`]): the inputs to the bytes/flow figure the
/// million-flow benchmark records and `bench_gate` enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryFootprint {
    /// Slab bytes: slot array, free list, per-flow `link_pos` slices.
    pub slab_bytes: usize,
    /// Incidence bytes: the per-link flow lists plus the active-flow index.
    pub incidence_bytes: usize,
    /// Component bytes: the union–find link partition, its intrusive flow
    /// node pool, and the dirty-tracking arrays. Checkpointed state, so it
    /// is counted — a restored simulation carries it all back.
    pub component_bytes: usize,
    /// Warm-start bytes: the per-link persisted [`RebalanceEngine::WarmStart`]
    /// fill records (rounds, frozen lists, residual-capacity histories) plus
    /// the arrival log. Zero under the other engines.
    pub warm_bytes: usize,
    /// Worker-pool scratch bytes: the per-worker shard and warm-task fill
    /// scratch (epoch-stamped capacity tables, fair-share queues, rate
    /// buffers) plus the split-fill scratch — allocated once and reused
    /// across flushes, so the million-flow RSS gate must see it. Zero
    /// until a parallel engine's first sharded or split flush.
    pub pool_bytes: usize,
    /// Live flows at measurement time (the divisor for bytes/flow).
    pub live_flows: usize,
}

impl MemoryFootprint {
    /// Total tracked bytes.
    pub fn total_bytes(&self) -> usize {
        self.slab_bytes
            + self.incidence_bytes
            + self.component_bytes
            + self.warm_bytes
            + self.pool_bytes
    }

    /// Tracked bytes per live flow. `extra_bytes` folds in structures owned
    /// elsewhere — typically the event queue's
    /// [`Scheduler::footprint_bytes`](crate::Scheduler::footprint_bytes).
    pub fn bytes_per_flow(&self, extra_bytes: usize) -> f64 {
        if self.live_flows == 0 {
            0.0
        } else {
            (self.total_bytes() + extra_bytes) as f64 / self.live_flows as f64
        }
    }
}

/// Effectively infinite rate used for loopback (empty-route) flows.
const LOOPBACK_RATE: f64 = f64::MAX / 4.0;

/// Residual byte threshold below which a flow counts as drained (absorbs
/// floating-point error accumulated across rate recomputations).
const DRAIN_EPSILON: f64 = 1e-3;

/// Rates below this (bytes/s) are float dust left by capacity cancellation,
/// not real allocations; flows "allocated" less are treated as starved.
const MIN_RATE: f64 = 1e-6;

#[derive(Debug, Clone)]
struct FlowState {
    id: FlowId,
    src: HostId,
    dst: HostId,
    token: u64,
    size: DataSize,
    route: Arc<Route>,
    /// Payload bytes still to drain, exact as of `last_progress`.
    remaining: f64,
    /// Currently allocated rate in bytes/s (0 until activated).
    rate: f64,
    /// Last instant at which `remaining` was brought up to date.
    last_progress: SimTime,
    active: bool,
    /// Bumped whenever this flow's rate changes; stale completions are
    /// recognised by carrying an older version.
    version: u64,
    /// Whether a completion event for `version` is pending on the heap.
    pending_completion: bool,
    /// Position of this flow in `Network::active` (valid while active).
    active_pos: u32,
    /// For each hop `i` of `route.links`, this flow's position inside
    /// `Network::link_flows[route.links[i]]` (valid while active). A boxed
    /// slice, not a `Vec`: the hop count is fixed at creation, so the
    /// exact-fit allocation drops the capacity word and any growth slack
    /// from the per-flow footprint.
    link_pos: Box<[u32]>,
    /// Scratch: epoch at which this flow's rate was fixed by the filling.
    fixed_epoch: u64,
    /// Scratch: epoch at which this flow was gathered into a dirty flush.
    comp_epoch: u64,
    /// Scratch: rate assigned by the in-progress recomputation.
    new_rate: f64,
}

#[derive(Debug, Clone)]
struct Slot {
    generation: u32,
    state: Option<FlowState>,
}

/// Per-worker scratch of the parallel shard engine: a private copy of every
/// epoch-stamped table the progressive fill writes, so a shard touches no
/// shared mutable network state. Tables are link-/slot-indexed like their
/// `Network` counterparts (components never share links or flows, so two
/// shards never index the same entry of *their own* tables for the same
/// underlying object — each scratch is simply independent) and reused
/// across flushes; nothing allocates after the first flush at a given
/// scale.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Monotone fill epoch of this scratch (independent of the network's).
    epoch: u64,
    link_capacity: Vec<f64>,
    link_unfixed: Vec<u32>,
    link_epoch: Vec<u64>,
    /// Links seeded by the current fill (deduplicated via `link_epoch`).
    touched_links: Vec<usize>,
    /// This shard's private bottleneck-selection queue.
    queue: FairShareQueue,
    link_round: Vec<u64>,
    affected: Vec<usize>,
    fill_round: u64,
    /// Epoch at which a slot's rate was fixed by this shard's fill.
    flow_fixed: Vec<u64>,
    /// The thread-local rate delta buffer: the rate this shard's fill
    /// assigned per slot (valid where `flow_fixed` carries the epoch).
    flow_rate: Vec<f64>,
}

impl ShardScratch {
    /// Heap bytes held by this scratch, for
    /// [`MemoryFootprint::pool_bytes`] — per-worker state that persists
    /// across flushes and would otherwise escape the RSS gate.
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.link_capacity.capacity() * size_of::<f64>()
            + self.link_unfixed.capacity() * size_of::<u32>()
            + self.link_epoch.capacity() * size_of::<u64>()
            + self.touched_links.capacity() * size_of::<usize>()
            + self.queue.heap_bytes()
            + self.link_round.capacity() * size_of::<u64>()
            + self.affected.capacity() * size_of::<usize>()
            + self.flow_fixed.capacity() * size_of::<u64>()
            + self.flow_rate.capacity() * size_of::<f64>()
    }
}

/// One shard of a parallel flush: the slot indices of the flows of the
/// components binned onto this worker, plus the worker's scratch.
#[derive(Debug, Default)]
struct ShardTask {
    flows: Vec<u32>,
    /// Live-flow load used by the size-balanced binning.
    load: usize,
    scratch: ShardScratch,
}

impl ShardTask {
    /// Heap bytes held by this shard's persistent scratch, for
    /// [`MemoryFootprint::pool_bytes`].
    fn heap_bytes(&self) -> usize {
        self.flows.capacity() * std::mem::size_of::<u32>() + self.scratch.heap_bytes()
    }

    /// Re-run progressive filling over this shard's flows, reading shared
    /// network state immutably and writing results only into the scratch.
    ///
    /// This mirrors `Network::recompute_rates_dirty` phase 3 plus
    /// `fill_by_bucket_queue` / `fix_bottleneck_flows` exactly — same
    /// seeding arithmetic, same dust rule, same link-index tie-breaking —
    /// so a shard re-derives bit-identical rates to the single-threaded
    /// fill (the fill is a pure function of each component's flow set, and
    /// this shard holds whole components).
    fn run(&mut self, slots: &[Slot], link_flows: &[Vec<u32>], links: &[crate::platform::Link]) {
        let s = &mut self.scratch;
        if s.link_capacity.len() < links.len() {
            s.link_capacity.resize(links.len(), 0.0);
            s.link_unfixed.resize(links.len(), 0);
            s.link_epoch.resize(links.len(), 0);
            s.link_round.resize(links.len(), 0);
        }
        if s.flow_fixed.len() < slots.len() {
            s.flow_fixed.resize(slots.len(), 0);
            s.flow_rate.resize(slots.len(), 0.0);
        }
        s.epoch += 1;
        let epoch = s.epoch;
        s.touched_links.clear();
        let mut unfixed_flows = 0usize;
        for &slot_idx in &self.flows {
            let si = slot_idx as usize;
            let f = slots[si].state.as_ref().expect("gathered flows are live");
            s.flow_fixed[si] = 0;
            s.flow_rate[si] = 0.0;
            unfixed_flows += 1;
            for &l in &f.route.links {
                if s.link_epoch[l] != epoch {
                    s.link_epoch[l] = epoch;
                    s.link_capacity[l] = links[l].bandwidth.bytes_per_sec();
                    s.link_unfixed[l] = 0;
                    s.touched_links.push(l);
                }
                s.link_unfixed[l] += 1;
            }
        }
        s.queue
            .seed(&s.touched_links, &s.link_capacity, &s.link_unfixed);
        while unfixed_flows > 0 {
            let Some((bottleneck, share)) = s.queue.pop_min() else {
                break;
            };
            s.fill_round += 1;
            let round = s.fill_round;
            s.affected.clear();
            let mut fixed = 0usize;
            for &slot_idx in &link_flows[bottleneck] {
                let si = slot_idx as usize;
                if s.flow_fixed[si] == epoch {
                    continue;
                }
                s.flow_fixed[si] = epoch;
                s.flow_rate[si] = if share < MIN_RATE { 0.0 } else { share };
                fixed += 1;
                let f = slots[si].state.as_ref().expect("incident flows are live");
                for &l in &f.route.links {
                    s.link_capacity[l] = (s.link_capacity[l] - share).max(0.0);
                    s.link_unfixed[l] -= 1;
                    if s.link_round[l] != round {
                        s.link_round[l] = round;
                        s.affected.push(l);
                    }
                }
            }
            unfixed_flows -= fixed;
            for &l in &s.affected {
                if l == bottleneck {
                    continue;
                }
                let n = s.link_unfixed[l];
                if n == 0 {
                    s.queue.remove(l);
                } else {
                    s.queue.set(l, s.link_capacity[l] / n as f64);
                }
            }
        }
        s.queue.clear();
    }
}

/// Sentinel for "this link never popped as a bottleneck" in
/// [`FillRecord::pop_round`].
const NO_ROUND: u32 = u32::MAX;

/// One saturation round of a recorded component fill: `link` popped as the
/// bottleneck at fair share `share`, freezing the flows
/// `frozen[prev.frozen_end..frozen_end]` of the owning record.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct FillRound {
    link: u32,
    share: f64,
    frozen_end: u32,
}

/// The persisted bottleneck sequence of one component's last progressive
/// fill, keyed by the union–find component epoch
/// (`LinkComponents::key_of_root`). This is what makes a warm start
/// possible: because the fill is a pure function of the flow set with
/// link-index tie-breaking, the recorded prefix of saturation rounds that a
/// change cannot affect is *bit-identical* to the corresponding prefix of a
/// cold fill of the changed flow set — so the next flush replays only the
/// suffix, seeded from the recorded residual capacities.
///
/// Invariant: after every flush of the component, the record is exactly
/// what a cold recorded fill of the component's current live flow set
/// would have produced (up to within-round `frozen` order, which nothing
/// consumes) — warm flushes maintain this by truncating the replaced
/// suffix and appending the replayed one, which is why records compose
/// across arbitrarily long churn sequences.
#[derive(Debug, Default, Serialize, Deserialize)]
struct FillRecord {
    /// Component epoch this record was made under; a mismatch against the
    /// current `key_of_root` (component merged, or region rebuilt) kills
    /// the record.
    key: u64,
    /// The saturation rounds in pop order; shares are non-decreasing
    /// (progressive filling's pop sequence is monotone), which is what the
    /// resume-level binary search relies on.
    rounds: Vec<FillRound>,
    /// Every flow fixed by the recorded fill, concatenated round by round
    /// (`FillRound::frozen_end` delimits). A prefix cut of this list is the
    /// set of flows a warm start leaves untouched.
    frozen: Vec<FlowId>,
    /// Every link the recorded fill seeded (global link ids); the parallel
    /// vectors below are indexed by position in this list ("record slots").
    links: Vec<u32>,
    /// Per record slot: live flows crossing the link as of the record's
    /// fill — the seed of the resume-level σ rule (a *higher* current count
    /// means net arrivals put the link's fresh fair share below recorded
    /// levels, bounding where the recorded sequence can first change).
    seed_unfixed: Vec<u32>,
    /// Per record slot: the round at which the link popped as bottleneck
    /// ([`NO_ROUND`] if it never did). A dirty link's pop round bounds the
    /// resume level from above: the round that froze a departed flow — and
    /// every later one — must be replayed.
    pop_round: Vec<u32>,
    /// Per record slot: residual-capacity history `(k, capacity after the
    /// first k rounds)`, first entry `(0, full capacity)`. Restoring "the
    /// state just before round k*" is a tail-truncation plus last-entry
    /// read — stored values, not re-derived arithmetic, so the restore is
    /// bit-exact (re-adding suffix shares would not be: float addition
    /// does not undo the recorded subtractions).
    hist: Vec<Vec<(u32, f64)>>,
}

impl FillRecord {
    /// Heap bytes held by this record (the boxed struct plus its vectors),
    /// for [`Network::memory_footprint`] telemetry.
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        size_of::<FillRecord>()
            + self.rounds.capacity() * size_of::<FillRound>()
            + self.frozen.capacity() * size_of::<FlowId>()
            + self.links.capacity() * size_of::<u32>()
            + self.seed_unfixed.capacity() * size_of::<u32>()
            + self.pop_round.capacity() * size_of::<u32>()
            + self.hist.capacity() * size_of::<Vec<(u32, f64)>>()
            + self
                .hist
                .iter()
                .map(|h| h.capacity() * size_of::<(u32, f64)>())
                .sum::<usize>()
    }

    /// First recorded round that a fresh queue entry `(share, link)` could
    /// preempt. Rounds strictly lex-below `(share, link)` pop before the
    /// entry can (per-link fair shares only ever grow as the fill
    /// progresses, so the entry's key never drops below `share`); the
    /// first round lex-above it is where the recorded sequence can first
    /// change. Recorded shares are non-decreasing, so binary-search the
    /// share, then resolve the equal-share run by the fill's link-index
    /// tie-break.
    fn first_preemptable_round(&self, share: f64, link: usize) -> usize {
        let mut i = self.rounds.partition_point(|r| r.share < share);
        while i < self.rounds.len() && self.rounds[i].share == share {
            if self.rounds[i].link as usize > link {
                return i;
            }
            i += 1;
        }
        i
    }
}

/// One component fill of a warm-start flush: a dirty root, its record (cold
/// fills start from a fresh one), the resume level, and the participant
/// flows (recorded suffix survivors plus arrivals since the record — for a
/// cold fill, the whole gathered component). Like [`ShardTask`], results
/// land in private scratch so tasks can run on worker threads; unlike it,
/// each task is exactly one component, because the record describes one.
#[derive(Debug, Default)]
struct WarmTask {
    /// The component's root link.
    root: u32,
    /// The component's record, moved in for the duration of the flush
    /// (appended to by the fill) and moved back at merge.
    rec: Option<Box<FillRecord>>,
    /// Resume level: recorded rounds `0..k_star` are kept verbatim, rounds
    /// `k_star..` are truncated and replayed. Zero for cold fills.
    k_star: u32,
    /// Participant slot indices (suffix survivors + arrivals, any order —
    /// the fill is order-independent).
    flows: Vec<u32>,
    /// Whether this flush resumed from a prior record. A warm task's
    /// participant list must be completed from the arrival log (the record
    /// cannot know about flows that arrived after it was made); a cold
    /// task's gathered list already holds every attached live flow.
    warm: bool,
    /// Private fill scratch (same tables as a parallel shard's).
    scratch: ShardScratch,
    /// Participation stamp per slot: link incidence lists also hold
    /// prefix-frozen flows, which the replay must never re-fix.
    part: Vec<u64>,
    /// Link → record-slot map (epoch-stamped, rebuilt per flush).
    slot_map: Vec<u32>,
    slot_epoch: Vec<u64>,
    map_gen: u64,
}

impl WarmTask {
    /// Heap bytes held by this task's persistent scratch (the record is
    /// accounted under `warm_bytes` — it lives in `warm_records` between
    /// flushes), for [`MemoryFootprint::pool_bytes`].
    fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.flows.capacity() * size_of::<u32>()
            + self.scratch.heap_bytes()
            + self.part.capacity() * size_of::<u64>()
            + self.slot_map.capacity() * size_of::<u32>()
            + self.slot_epoch.capacity() * size_of::<u64>()
    }

    /// Load the link→record-slot map from the record currently in the task
    /// (serial pre-pass; the resume-level computation and the replay both
    /// key on it).
    fn load_map(&mut self, link_count: usize) {
        self.map_gen += 1;
        if self.slot_epoch.len() < link_count {
            self.slot_epoch.resize(link_count, 0);
            self.slot_map.resize(link_count, 0);
        }
        let rec = self.rec.take().expect("task holds its record");
        for (s, &l) in rec.links.iter().enumerate() {
            self.slot_epoch[l as usize] = self.map_gen;
            self.slot_map[l as usize] = s as u32;
        }
        self.rec = Some(rec);
    }

    /// Record slot of `link`, if the record has seen it.
    fn slot_of(&self, link: usize) -> Option<usize> {
        (self.slot_epoch[link] == self.map_gen).then(|| self.slot_map[link] as usize)
    }

    /// Resume progressive filling from `k_star`: truncate the record's
    /// replaced suffix, seed the participants with the prefix's residual
    /// capacities restored from the record, and replay the fill while
    /// re-recording it. With `k_star == 0` and a fresh record this *is* a
    /// cold recorded fill.
    ///
    /// KEEP IN SYNC with [`ShardTask::run`] / `fix_bottleneck_flows`: same
    /// seeding arithmetic, same dust rule, same link-index tie-breaking —
    /// plus the participation guard and the record bookkeeping. Any drift
    /// breaks the five-way bit-identity in `tests/props.rs`.
    ///
    /// `split` carries the work-stealing machinery when this task runs
    /// serially (see [`SplitCtx`]): rounds whose bottleneck incidence list
    /// reaches the split threshold are fanned out across the pool's
    /// workers, bit-identically to the serial loop.
    fn run(
        &mut self,
        slots: &[Slot],
        link_flows: &[Vec<u32>],
        links: &[crate::platform::Link],
        mut split: Option<&mut SplitCtx<'_>>,
    ) {
        let mut rec = self.rec.take().expect("task holds its record");
        let k = self.k_star as usize;
        let cut = if k == 0 {
            0
        } else {
            rec.rounds[k - 1].frozen_end as usize
        };
        // Truncate everything the replay supersedes: rounds ≥ k*, the flows
        // they froze, the capacity-history tails they wrote, and the pop
        // marks of links that popped in the replaced suffix. Also refresh
        // every record link's seed count to the current incidence size —
        // after this flush the record must describe a fill of the *current*
        // flow set (counts cannot change mid-flush; departures already left
        // the incidence lists and arrivals already joined them).
        rec.rounds.truncate(k);
        rec.frozen.truncate(cut);
        for s in 0..rec.links.len() {
            let l = rec.links[s] as usize;
            let h = &mut rec.hist[s];
            while h.last().is_some_and(|&(r, _)| r as usize > k) {
                h.pop();
            }
            if rec.pop_round[s] != NO_ROUND && rec.pop_round[s] as usize >= k {
                rec.pop_round[s] = NO_ROUND;
            }
            rec.seed_unfixed[s] = link_flows[l].len() as u32;
        }
        // Seed the participants. A link's restored capacity is the last
        // surviving history entry (= its residual after the kept prefix,
        // bit-exact); links the record has never seen carried no flow when
        // it was made — no prefix round touched them — so they enter at
        // full capacity and are registered on the spot.
        let map_gen = self.map_gen;
        let (s, part, slot_map, slot_epoch) = (
            &mut self.scratch,
            &mut self.part,
            &mut self.slot_map,
            &mut self.slot_epoch,
        );
        if s.link_capacity.len() < links.len() {
            s.link_capacity.resize(links.len(), 0.0);
            s.link_unfixed.resize(links.len(), 0);
            s.link_epoch.resize(links.len(), 0);
            s.link_round.resize(links.len(), 0);
        }
        if s.flow_fixed.len() < slots.len() {
            s.flow_fixed.resize(slots.len(), 0);
            s.flow_rate.resize(slots.len(), 0.0);
        }
        if part.len() < slots.len() {
            part.resize(slots.len(), 0);
        }
        s.epoch += 1;
        let epoch = s.epoch;
        s.touched_links.clear();
        let mut unfixed_flows = 0usize;
        for &slot_idx in &self.flows {
            let si = slot_idx as usize;
            let f = slots[si].state.as_ref().expect("participants are live");
            part[si] = epoch;
            s.flow_fixed[si] = 0;
            s.flow_rate[si] = 0.0;
            unfixed_flows += 1;
            for &l in &f.route.links {
                if s.link_epoch[l] != epoch {
                    s.link_epoch[l] = epoch;
                    s.link_capacity[l] = if slot_epoch[l] == map_gen {
                        let rs = slot_map[l] as usize;
                        rec.hist[rs].last().expect("hist keeps its seed entry").1
                    } else {
                        let full = links[l].bandwidth.bytes_per_sec();
                        let rs = rec.links.len() as u32;
                        rec.links.push(l as u32);
                        rec.seed_unfixed.push(link_flows[l].len() as u32);
                        rec.pop_round.push(NO_ROUND);
                        rec.hist.push(vec![(0, full)]);
                        slot_epoch[l] = map_gen;
                        slot_map[l] = rs;
                        full
                    };
                    s.link_unfixed[l] = 0;
                    s.touched_links.push(l);
                }
                s.link_unfixed[l] += 1;
            }
        }
        s.queue
            .seed(&s.touched_links, &s.link_capacity, &s.link_unfixed);
        while unfixed_flows > 0 {
            let Some((bottleneck, share)) = s.queue.pop_min() else {
                break;
            };
            let round_idx = rec.rounds.len() as u32;
            s.fill_round += 1;
            let round = s.fill_round;
            s.affected.clear();
            let mut fixed = 0usize;
            let stolen = split
                .as_deref_mut()
                .filter(|ctx| link_flows[bottleneck].len() >= ctx.split_min);
            if let Some(ctx) = stolen {
                // Work-stolen round. Phase A: workers claim chunks of the
                // bottleneck's incidence list and record, privately, the
                // eligible flows and per-link crossing counts.
                let budget = ctx.pool.budget();
                while ctx.workers.len() < budget {
                    ctx.workers.push(SplitScratch::default());
                }
                {
                    let flow_fixed = &s.flow_fixed;
                    let part_ro: &[u64] = part;
                    split_scan(
                        ctx.pool,
                        &mut ctx.workers[..budget],
                        &link_flows[bottleneck],
                        split_chunk(link_flows[bottleneck].len(), budget),
                        links.len(),
                        slots,
                        |si| part_ro[si] == epoch && flow_fixed[si] != epoch,
                    );
                }
                split_collect_segs(ctx.workers, budget, ctx.segs);
                // Phase B (serial merge). Stamping the fixed flows in the
                // chunk-sorted segment order reproduces the exact incidence
                // order of the serial loop, so `rec.frozen` and the rate
                // stamps are byte-identical to it.
                for &(_, w, a, b) in ctx.segs.iter() {
                    for &slot_idx in &ctx.workers[w as usize].fixed[a as usize..b as usize] {
                        let si = slot_idx as usize;
                        s.flow_fixed[si] = epoch;
                        s.flow_rate[si] = if share < MIN_RATE { 0.0 } else { share };
                        fixed += 1;
                        let f = slots[si].state.as_ref().expect("participants are live");
                        rec.frozen.push(f.id);
                    }
                }
                // Capacity releases commute across workers: per link, each
                // release is `(x - share).max(0.0)`, so applying worker 0's
                // k₀ subtractions then worker 1's k₁ runs the same float
                // sequence as the serial loop's k₀+k₁. Never collapse the
                // repeat into `capacity - k·share` — that changes rounding.
                for ws in &ctx.workers[..budget] {
                    for &l32 in &ws.touched {
                        let l = l32 as usize;
                        for _ in 0..ws.link_count[l] {
                            s.link_capacity[l] = (s.link_capacity[l] - share).max(0.0);
                        }
                        s.link_unfixed[l] -= ws.link_count[l];
                        if s.link_round[l] != round {
                            s.link_round[l] = round;
                            s.affected.push(l);
                        }
                    }
                }
                // `s.affected` now lists links in per-worker touch order
                // rather than the serial first-touch order; everything it
                // feeds (one hist append per link, commutative queue-key
                // refreshes) is order-independent, so the fill stays
                // bit-identical.
                *ctx.steals += 1;
            } else {
                for &slot_idx in &link_flows[bottleneck] {
                    let si = slot_idx as usize;
                    if part[si] != epoch || s.flow_fixed[si] == epoch {
                        continue;
                    }
                    s.flow_fixed[si] = epoch;
                    s.flow_rate[si] = if share < MIN_RATE { 0.0 } else { share };
                    fixed += 1;
                    let f = slots[si].state.as_ref().expect("participants are live");
                    rec.frozen.push(f.id);
                    for &l in &f.route.links {
                        s.link_capacity[l] = (s.link_capacity[l] - share).max(0.0);
                        s.link_unfixed[l] -= 1;
                        if s.link_round[l] != round {
                            s.link_round[l] = round;
                            s.affected.push(l);
                        }
                    }
                }
            }
            debug_assert!(fixed > 0, "a popped bottleneck fixes at least one flow");
            unfixed_flows -= fixed;
            rec.rounds.push(FillRound {
                link: bottleneck as u32,
                share,
                frozen_end: rec.frozen.len() as u32,
            });
            debug_assert_eq!(
                slot_epoch[bottleneck], map_gen,
                "popped links were seeded, hence registered"
            );
            let bs = slot_map[bottleneck] as usize;
            debug_assert_eq!(
                rec.pop_round[bs], NO_ROUND,
                "links that popped in the kept prefix carry no replay flows"
            );
            rec.pop_round[bs] = round_idx;
            for i in 0..s.affected.len() {
                let l = s.affected[i];
                debug_assert_eq!(
                    slot_epoch[l], map_gen,
                    "affected links were seeded, hence registered"
                );
                let rs = slot_map[l] as usize;
                rec.hist[rs].push((round_idx + 1, s.link_capacity[l]));
                if l == bottleneck {
                    continue;
                }
                let n = s.link_unfixed[l];
                if n == 0 {
                    s.queue.remove(l);
                } else {
                    s.queue.set(l, s.link_capacity[l] / n as f64);
                }
            }
        }
        s.queue.clear();
        self.rec = Some(rec);
    }
}

/// Borrowed split-fill machinery handed to a *serially executing* fill:
/// the worker pool, the per-worker scratch, the segment-merge scratch, the
/// engagement threshold and the steal counter. Only serial fills receive
/// one — a fill already running inside a pool dispatch passes `None`, since
/// re-entering the pool from a worker would deadlock on the dispatch lock.
struct SplitCtx<'a> {
    pool: &'a mut WorkerPool,
    workers: &'a mut Vec<SplitScratch>,
    segs: &'a mut Vec<(u32, u32, u32, u32)>,
    /// Minimum bottleneck incidence-list length for a round to be split.
    split_min: usize,
    steals: &'a mut u64,
}

/// Chunk size of a split round: a pure function of the incidence-list
/// length and the *logical* worker budget, never of the physical thread
/// count — so the chunk boundaries (and hence the merged order) are
/// identical on every machine with the same [`EngineConfig`]. Four chunks
/// per worker gives the claiming loop slack to balance uneven eligibility
/// density; the floor keeps chunks worth their claim overhead.
fn split_chunk(len: usize, budget: usize) -> usize {
    len.div_ceil(budget * 4).max(16)
}

/// Phase A of one work-stolen split round: workers claim fixed-size chunks
/// of the bottleneck's incidence list from a shared cursor and record — in
/// private scratch only — which flows they would fix and how many of them
/// cross each link. Shared state (`slots`, the eligibility tables behind
/// `eligible`) is read immutably; nothing global is written, so the claim
/// order is free to vary run to run without affecting the result.
fn split_scan<E>(
    pool: &mut WorkerPool,
    workers: &mut [SplitScratch],
    list: &[u32],
    chunk: usize,
    link_count: usize,
    slots: &[Slot],
    eligible: E,
) where
    E: Fn(usize) -> bool + Sync,
{
    for ws in workers.iter_mut() {
        ws.ensure_links(link_count);
        ws.begin_round();
    }
    let n_chunks = list.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    pool.for_each_mut(workers, |ws| loop {
        let c = cursor.fetch_add(1, Ordering::Relaxed);
        if c >= n_chunks {
            break;
        }
        let start = c * chunk;
        let end = (start + chunk).min(list.len());
        for &slot_idx in &list[start..end] {
            let si = slot_idx as usize;
            if !eligible(si) {
                continue;
            }
            ws.fixed.push(slot_idx);
            let f = slots[si].state.as_ref().expect("incident flows are live");
            for &l in &f.route.links {
                if ws.link_stamp[l] != ws.stamp {
                    ws.link_stamp[l] = ws.stamp;
                    ws.link_count[l] = 0;
                    ws.touched.push(l as u32);
                }
                ws.link_count[l] += 1;
            }
        }
        ws.chunk_ends.push((c as u32, ws.fixed.len() as u32));
    });
}

/// Collect every worker's per-chunk segments of its `fixed` list as
/// `(chunk, worker, start, end)` and sort them by chunk index. Walking the
/// sorted segments reconstructs the *exact* incidence order of the round's
/// fixed flows — chunks partition the list in order, and within a chunk one
/// worker recorded the flows in list order — which is what lets phase B
/// stamp rates and append `FillRecord::frozen` byte-identically to the
/// serial loop.
fn split_collect_segs(
    workers: &[SplitScratch],
    budget: usize,
    segs: &mut Vec<(u32, u32, u32, u32)>,
) {
    segs.clear();
    for (w, ws) in workers[..budget].iter().enumerate() {
        let mut start = 0u32;
        for &(c, end) in &ws.chunk_ends {
            segs.push((c, w as u32, start, end));
            start = end;
        }
    }
    segs.sort_unstable_by_key(|&(c, _, _, _)| c);
}

/// The flow-level network simulator state.
#[derive(Debug)]
pub struct Network {
    platform: Platform,
    mode: SharingMode,
    /// Slab flow table; `FlowId::slot()` indexes it directly.
    slots: Vec<Slot>,
    free_slots: Vec<u32>,
    live_flows: usize,
    /// Slot indices of currently *active* (draining) flows.
    active: Vec<u32>,
    /// Per directed link (indexed like `Platform::links`): slot indices of
    /// the active flows crossing it. Maintained incrementally.
    link_flows: Vec<Vec<u32>>,
    /// Rebalance scratch (epoch-stamped, reused across rebalances).
    link_capacity: Vec<f64>,
    link_unfixed: Vec<u32>,
    link_epoch: Vec<u64>,
    touched_links: Vec<usize>,
    epoch: u64,
    /// Bottleneck-selection queue of the bucketed engine.
    queue: FairShareQueue,
    /// Scratch for the links affected by one filling round (stamp + list).
    link_round: Vec<u64>,
    affected_links: Vec<usize>,
    fill_round: u64,
    /// Link connectivity for [`RebalanceEngine::DirtyComponent`]: union–find
    /// plus per-component flow lists, maintained on activate and rebuilt
    /// exactly (for the flushed region only) after every flush.
    comp: LinkComponents,
    /// Links whose flow set changed since the last flush, deduplicated via
    /// `dirty_mark[l] == dirty_gen`.
    dirty_links: Vec<usize>,
    dirty_mark: Vec<u64>,
    dirty_gen: u64,
    /// Scratch: epoch stamp per link marking already-gathered component roots.
    comp_stamp: Vec<u64>,
    /// Scratch: the distinct component roots of the current flush.
    dirty_roots: Vec<usize>,
    /// Non-loopback active flows currently attached to `comp`.
    attached_flows: usize,
    /// Scratch: the flow ids gathered from dirty components.
    comp_raw: Vec<FlowId>,
    /// Scratch: per dirty root, the gathered range of `comp_raw` (what the
    /// shard binning partitions — components must stay whole per shard).
    root_ranges: Vec<(u32, u32)>,
    /// Scratch: component order of the size-balanced binning.
    shard_order: Vec<u32>,
    /// Worker shards of [`RebalanceEngine::ParallelShard`] (reused across
    /// flushes; grown to the dispatch width on demand).
    shard_tasks: Vec<ShardTask>,
    /// The unified engine configuration (engine choice, worker budget,
    /// parallel threshold, split granularity) — see [`Network::config`].
    config: EngineConfig,
    /// The persistent worker pool. `Some` exactly while a parallel-capable
    /// engine has an effective worker budget ≥ 2 and a flush has needed it
    /// (created lazily on the first flush, rebuilt when
    /// [`Network::set_config`] changes the budget, never serialized — a
    /// restored network re-creates it on demand).
    pool: Option<WorkerPool>,
    /// Per-worker scratch of the split fill (work-stolen oversized
    /// components); reused across flushes, grown to the budget on demand.
    split_workers: Vec<SplitScratch>,
    /// Scratch: `(chunk, worker, start, end)` segments of one split round's
    /// merge, sorted by chunk to reconstruct exact incidence order.
    split_segs: Vec<(u32, u32, u32, u32)>,
    /// Scratch: slot indices of the flows a dirty flush recomputes, ordered
    /// like `active` (so reschedules happen in the same order a full
    /// recompute would produce — equal-timestamp FIFO order is observable).
    comp_flows: Vec<u32>,
    /// Per-root fill records of [`RebalanceEngine::WarmStart`], indexed by
    /// root link (`None` for non-roots, never-filled components, and
    /// invalidated records).
    warm_records: Vec<Option<Box<FillRecord>>>,
    /// Flows activated since the last flush (warm engine only): a warm
    /// start never gathers its component's flow list, so arrivals reach
    /// the fill through this log instead. Cleared every flush — every
    /// arrival dirties its links, so its component is always flushed by
    /// the very flush that consumes the log.
    warm_arrivals: Vec<FlowId>,
    /// Per-component fill tasks of the warm engine (reused across flushes;
    /// grown to the dirty-root count on demand).
    warm_tasks: Vec<WarmTask>,
    /// Scratch: `(task index, link)` pairs grouping this flush's dirty
    /// links by dirty root, for the resume-level computation.
    warm_dirty: Vec<(u32, u32)>,
    /// Dirty-flush telemetry (see [`Network::flush_stats`]).
    flush_stats: FlushStats,
    /// True while a [`NetEvent::Rebalance`] sentinel is pending at the
    /// current instant (reset when it fires; sentinels never cross
    /// timestamps, so no time needs to be stored).
    rebalance_pending: bool,
    compaction: CompactionPolicy,
    compactions: u64,
    stats: NetStats,
}

impl Network {
    /// Wrap a platform in a network simulator with the default
    /// (bucket-queue, batching) rebalance engine.
    pub fn new(platform: Platform, mode: SharingMode) -> Self {
        Self::with_config(platform, mode, EngineConfig::default())
    }

    /// Wrap a platform in a network simulator with an explicit rebalance
    /// engine and that engine's default threading knobs (the per-event scan
    /// engine exists for differential tests and benchmarks). Shorthand for
    /// [`Network::with_config`] with `EngineConfig::new(engine)`.
    pub fn with_engine(platform: Platform, mode: SharingMode, engine: RebalanceEngine) -> Self {
        Self::with_config(platform, mode, EngineConfig::new(engine))
    }

    /// Wrap a platform in a network simulator with a full
    /// [`EngineConfig`]: engine choice, worker budget, parallel threshold
    /// and split granularity in one validated value.
    ///
    /// # Panics
    ///
    /// Panics when `config.validate()` rejects the configuration.
    pub fn with_config(platform: Platform, mode: SharingMode, config: EngineConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid EngineConfig: {e}");
        }
        let link_count = platform.links().len();
        Network {
            platform,
            mode,
            slots: Vec::new(),
            free_slots: Vec::new(),
            live_flows: 0,
            active: Vec::new(),
            link_flows: vec![Vec::new(); link_count],
            link_capacity: vec![0.0; link_count],
            link_unfixed: vec![0; link_count],
            link_epoch: vec![0; link_count],
            touched_links: Vec::new(),
            epoch: 0,
            queue: FairShareQueue::new(),
            link_round: vec![0; link_count],
            affected_links: Vec::new(),
            fill_round: 0,
            comp: LinkComponents::new(link_count),
            dirty_links: Vec::new(),
            dirty_mark: vec![0; link_count],
            dirty_gen: 1,
            comp_stamp: vec![0; link_count],
            dirty_roots: Vec::new(),
            attached_flows: 0,
            flush_stats: FlushStats::default(),
            comp_raw: Vec::new(),
            root_ranges: Vec::new(),
            shard_order: Vec::new(),
            shard_tasks: Vec::new(),
            config,
            pool: None,
            split_workers: Vec::new(),
            split_segs: Vec::new(),
            comp_flows: Vec::new(),
            warm_records: {
                let mut v = Vec::new();
                v.resize_with(link_count, || None);
                v
            },
            warm_arrivals: Vec::new(),
            warm_tasks: Vec::new(),
            warm_dirty: Vec::new(),
            rebalance_pending: false,
            compaction: CompactionPolicy::default(),
            compactions: 0,
            stats: NetStats {
                link_bytes: vec![0; link_count],
                ..NetStats::default()
            },
        }
    }

    /// The rebalance engine in use.
    pub fn engine(&self) -> RebalanceEngine {
        self.config.engine
    }

    /// The engine configuration in force.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Replace the engine configuration's threading knobs. The **engine is
    /// fixed at construction** — each engine maintains different persistent
    /// state (component index, fill records), so swapping engines mid-run
    /// is not meaningful; build a new [`Network`] (or restore a checkpoint)
    /// to change it. Worker budget, parallel threshold and split
    /// granularity take effect at the next flush; a budget change retires
    /// the current worker pool (folding its statistics into
    /// [`FlushStats`]) and lazily builds a new one.
    ///
    /// # Panics
    ///
    /// Panics when `config.engine` differs from the constructed engine or
    /// `config.validate()` rejects the configuration.
    pub fn set_config(&mut self, config: EngineConfig) {
        assert_eq!(
            config.engine, self.config.engine,
            "the rebalance engine is fixed at construction; build a new Network to change it"
        );
        if let Err(e) = config.validate() {
            panic!("invalid EngineConfig: {e}");
        }
        self.config = config;
        // Retire a pool whose budget no longer matches; the next flush that
        // wants one rebuilds it at the new budget.
        if self
            .pool
            .as_ref()
            .is_some_and(|p| p.budget() != self.config.resolved_workers())
        {
            self.retire_pool();
        }
    }

    /// Whether the engine maintains the link-component index (the dirty and
    /// parallel-shard engines; their flush bookkeeping is shared).
    fn tracks_components(&self) -> bool {
        matches!(
            self.config.engine,
            RebalanceEngine::DirtyComponent
                | RebalanceEngine::ParallelShard
                | RebalanceEngine::WarmStart
        )
    }

    /// Worker threads a [`RebalanceEngine::ParallelShard`] flush may use.
    #[deprecated(since = "0.1.0", note = "use `Network::config().resolved_workers()`")]
    pub fn shard_threads(&self) -> usize {
        self.config.resolved_workers()
    }

    /// Override the worker budget of parallel flushes (forwards to
    /// [`Network::set_config`] with
    /// [`EngineConfig::workers`](EngineConfig::workers); `0` is clamped to
    /// 1 — "never shard" — preserving this setter's historical contract,
    /// *not* the config's 0-means-auto rule).
    #[deprecated(
        since = "0.1.0",
        note = "use `Network::set_config` with `EngineConfig::workers`"
    )]
    pub fn set_shard_threads(&mut self, threads: usize) {
        let config = self.config.workers(threads.max(1));
        self.set_config(config);
    }

    /// Override the parallel work threshold (forwards to
    /// [`Network::set_config`] with
    /// [`EngineConfig::parallel_threshold`](EngineConfig::parallel_threshold);
    /// 0 means "shard every multi-component flush").
    #[deprecated(
        since = "0.1.0",
        note = "use `Network::set_config` with `EngineConfig::parallel_threshold`"
    )]
    pub fn set_parallel_threshold(&mut self, min_flows: usize) {
        let config = self.config.parallel_threshold(min_flows);
        self.set_config(config);
    }

    /// Fold a retiring pool's counters into the stored [`FlushStats`] so
    /// [`Network::flush_stats`] stays cumulative across pool rebuilds.
    fn retire_pool(&mut self) {
        if let Some(pool) = self.pool.take() {
            self.flush_stats.flushes_dispatched += pool.dispatches();
            self.flush_stats.park_wakeups += pool.wakeups();
        }
    }

    /// Make sure the pool matches the configuration: parallel-capable
    /// engines with an effective budget ≥ 2 get one (created on first
    /// need), everything else runs poolless. Called at flush entry — cheap
    /// when nothing changed.
    fn ensure_pool(&mut self) {
        let want = self.config.parallel_capable() && self.config.resolved_workers() >= 2;
        match (&self.pool, want) {
            (Some(pool), true) if pool.budget() == self.config.resolved_workers() => {}
            (None, false) => {}
            (_, true) => {
                self.retire_pool();
                self.pool = Some(WorkerPool::new(self.config.resolved_workers()));
            }
            (_, false) => self.retire_pool(),
        }
    }

    /// The event-heap compaction policy in force.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.compaction
    }

    /// Replace the event-heap compaction policy.
    pub fn set_compaction_policy(&mut self, policy: CompactionPolicy) {
        self.compaction = policy;
    }

    /// Number of automatic compaction passes run so far.
    pub fn auto_compactions(&self) -> u64 {
        self.compactions
    }

    /// Telemetry of the dirty-component engine's flushes (all zero under
    /// the other engines). Pool counters (`flushes_dispatched`,
    /// `park_wakeups`) fold in the live worker pool's totals; of these,
    /// `park_wakeups` is scheduling-dependent — see its field docs.
    pub fn flush_stats(&self) -> FlushStats {
        let mut stats = self.flush_stats;
        if let Some(pool) = &self.pool {
            stats.flushes_dispatched += pool.dispatches();
            stats.park_wakeups += pool.wakeups();
        }
        stats
    }

    /// Drop every component's persisted fill record, forcing the warm-start
    /// engine's next flush of each component to run cold. Rates are
    /// unaffected — a cold fill re-derives the identical allocation — so
    /// this is purely a safety valve for drivers that rewrite simulation
    /// state out of band (scripted topology changes, mass-failure
    /// injection). The engine's own correctness never depends on being
    /// told: records are keyed by the union–find component epoch and die
    /// with it, and every in-band arrival/departure bounds the resume
    /// level itself. Dropped records count toward
    /// [`FlushStats::warm_invalidations`]. No-op under the other engines.
    pub fn invalidate_fill_records(&mut self) {
        for r in &mut self.warm_records {
            if r.take().is_some() {
                self.flush_stats.warm_invalidations += 1;
            }
        }
    }

    /// The warm-start engine's recorded bottleneck sequence for the
    /// component containing `link`, as `(link, fair share)` pairs in pop
    /// order — `None` when no current record exists (never filled, key
    /// expired by a merge, invalidated, or a different engine entirely).
    /// Introspection for telemetry and the resume-level boundary tests; the
    /// engine itself never reads records through this.
    pub fn fill_record_rounds(&mut self, link: usize) -> Option<Vec<(usize, f64)>> {
        let root = self.comp.find(link);
        let key = self.comp.key_of_root(root);
        let rec = self.warm_records[root].as_ref()?;
        (rec.key == key).then(|| {
            rec.rounds
                .iter()
                .map(|r| (r.link as usize, r.share))
                .collect()
        })
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Mutable access to the platform (route cache lives there).
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.platform
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The configured sharing mode.
    pub fn mode(&self) -> SharingMode {
        self.mode
    }

    /// Number of flows currently in flight (activated or not).
    pub fn flows_in_flight(&self) -> usize {
        self.live_flows
    }

    /// Resolve a flow id against the slab (generation-checked).
    fn flow(&self, id: FlowId) -> Option<&FlowState> {
        let slot = self.slots.get(id.slot() as usize)?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.state.as_ref()
    }

    fn flow_mut(&mut self, id: FlowId) -> Option<&mut FlowState> {
        let slot = self.slots.get_mut(id.slot() as usize)?;
        if slot.generation != id.generation() {
            return None;
        }
        slot.state.as_mut()
    }

    /// Analytic one-way delivery delay of a small control message, without
    /// creating a flow: `Σ latency + size / bottleneck`.
    ///
    /// ```
    /// use netsim::{cluster_bordeplage, HostSpec, Network, SharingMode};
    /// use p2p_common::DataSize;
    ///
    /// let topo = cluster_bordeplage(4, HostSpec::default());
    /// let mut net = Network::new(topo.platform.clone(), SharingMode::Bottleneck);
    ///
    /// // Same rack: two 1 Gbps NIC hops at 100 µs each.
    /// let d = net.message_delay(topo.hosts[0], topo.hosts[1], DataSize::from_bytes(1250));
    /// assert_eq!(d.as_nanos(), 200_000 + 10_000); // 2 × latency + 1250 B / 125 MB/s
    /// assert_eq!(net.stats().control_messages, 1);
    /// ```
    pub fn message_delay(&mut self, src: HostId, dst: HostId, size: DataSize) -> SimDuration {
        self.stats.control_messages += 1;
        if src == dst {
            return SimDuration::ZERO;
        }
        let route = self.platform.route(src, dst);
        route.analytic_transfer_time(size)
    }

    /// Start a bulk transfer of `size` bytes from `src` to `dst`. The caller
    /// receives back a [`FlowDelivery`] carrying `token` from
    /// [`Network::on_event`] when the transfer completes.
    pub fn start_flow<E: From<NetEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        src: HostId,
        dst: HostId,
        size: DataSize,
        token: u64,
    ) -> FlowId {
        self.stats.flows_started += 1;
        self.live_flows += 1;
        let route = self.platform.route(src, dst);
        let now = sched.now();
        // Allocate a slab slot (recycle if possible).
        let slot_idx = match self.free_slots.pop() {
            Some(i) => i,
            None => {
                self.slots.push(Slot {
                    generation: 0,
                    state: None,
                });
                (self.slots.len() - 1) as u32
            }
        };
        let generation = self.slots[slot_idx as usize].generation;
        let id = FlowId::from_parts(slot_idx, generation);
        let hops = route.links.len();
        let state = FlowState {
            id,
            src,
            dst,
            token,
            size,
            route: Arc::clone(&route),
            remaining: size.bytes() as f64,
            rate: 0.0,
            last_progress: now,
            active: false,
            version: 0,
            pending_completion: false,
            active_pos: 0,
            link_pos: vec![0u32; hops].into_boxed_slice(),
            fixed_epoch: 0,
            comp_epoch: 0,
            new_rate: 0.0,
        };
        self.slots[slot_idx as usize].state = Some(state);
        match self.mode {
            SharingMode::Bottleneck => {
                // No interaction between flows: one event at the analytic
                // time. The version field is meaningless here (nothing ever
                // invalidates the event), so it stays at zero.
                let total = route.analytic_transfer_time(size);
                sched.schedule_in(
                    total,
                    NetEvent::FlowCompletion {
                        flow: id,
                        version: 0,
                    }
                    .into(),
                );
            }
            SharingMode::MaxMinFair => {
                // The flow starts competing for bandwidth after the route
                // latency (pipe-fill delay).
                sched.schedule_in(route.latency, NetEvent::FlowActivate { flow: id }.into());
            }
        }
        id
    }

    /// Feed a [`NetEvent`] back to the network. Returns the deliveries that
    /// became final at the current time.
    pub fn on_event<E: NetWorldEvent>(
        &mut self,
        sched: &mut Scheduler<E>,
        event: NetEvent,
    ) -> Vec<FlowDelivery> {
        match (self.mode, event) {
            (SharingMode::Bottleneck, NetEvent::FlowCompletion { flow, .. }) => {
                match self.take_flow(flow) {
                    Some(state) => vec![self.finish_flow(state)],
                    None => vec![],
                }
            }
            (SharingMode::Bottleneck, NetEvent::FlowActivate { .. }) => vec![],
            (_, NetEvent::Rebalance) => {
                // The batched flush of every rebalance requested at this
                // instant (never scheduled in Bottleneck mode).
                self.rebalance_pending = false;
                self.rebalance(sched);
                self.maybe_compact(sched);
                vec![]
            }
            (SharingMode::MaxMinFair, NetEvent::FlowActivate { flow }) => {
                self.activate_flow(sched, flow);
                vec![]
            }
            (SharingMode::MaxMinFair, NetEvent::FlowCompletion { flow, version }) => {
                self.complete_flow(sched, flow, version)
            }
        }
    }

    /// React to a change of the active flow set: rebalance now (scan engine)
    /// or coalesce into one batched pass at the current instant.
    fn request_rebalance<E: NetWorldEvent>(&mut self, sched: &mut Scheduler<E>) {
        match self.config.engine {
            RebalanceEngine::ScanPerEvent => {
                self.rebalance(sched);
                self.maybe_compact(sched);
            }
            RebalanceEngine::BucketedBatched
            | RebalanceEngine::DirtyComponent
            | RebalanceEngine::ParallelShard
            | RebalanceEngine::WarmStart => {
                if !self.rebalance_pending {
                    self.rebalance_pending = true;
                    sched.schedule_at(sched.now(), NetEvent::Rebalance.into());
                }
            }
        }
    }

    /// Record that `links`' flow sets changed since the last flush (no-op
    /// for engines that do not limit their flushes).
    fn mark_dirty(&mut self, links: &[usize]) {
        if !self.tracks_components() {
            return;
        }
        for &l in links {
            if self.dirty_mark[l] != self.dirty_gen {
                self.dirty_mark[l] = self.dirty_gen;
                self.dirty_links.push(l);
            }
        }
    }

    /// Handle a `FlowActivate`: enter the incidence structure and rebalance.
    fn activate_flow<E: NetWorldEvent>(&mut self, sched: &mut Scheduler<E>, flow: FlowId) {
        let now = sched.now();
        let slot_idx = flow.slot();
        let active_pos = self.active.len() as u32;
        let loopback_version = {
            let Some(f) = self.flow_mut(flow) else {
                return;
            };
            f.active = true;
            f.last_progress = now;
            f.active_pos = active_pos;
            if f.route.links.is_empty() {
                // Loopback transfer: drained as soon as it is active. It
                // holds no link capacity, so it skips the rebalance.
                f.remaining = 0.0;
                f.rate = LOOPBACK_RATE;
                f.pending_completion = true;
                Some(f.version)
            } else {
                None
            }
        };
        self.active.push(slot_idx);
        if let Some(version) = loopback_version {
            sched.schedule_at(now, NetEvent::FlowCompletion { flow, version }.into());
            return;
        }
        let route = Arc::clone(
            &self.slots[slot_idx as usize]
                .state
                .as_ref()
                .expect("flow just observed")
                .route,
        );
        for (hop, &l) in route.links.iter().enumerate() {
            let list = &mut self.link_flows[l];
            // Record the back-pointer before pushing.
            let pos = list.len() as u32;
            list.push(slot_idx);
            self.slots[slot_idx as usize]
                .state
                .as_mut()
                .expect("flow just observed")
                .link_pos[hop] = pos;
        }
        if self.tracks_components() {
            self.comp.attach(&route.links, flow);
            self.attached_flows += 1;
            self.mark_dirty(&route.links);
            if self.config.engine == RebalanceEngine::WarmStart {
                self.warm_arrivals.push(flow);
            }
        }
        self.request_rebalance(sched);
    }

    /// Handle a `FlowCompletion`: finish the flow if the event is current.
    fn complete_flow<E: NetWorldEvent>(
        &mut self,
        sched: &mut Scheduler<E>,
        flow: FlowId,
        version: u64,
    ) -> Vec<FlowDelivery> {
        let now = sched.now();
        let Some(f) = self.flow_mut(flow) else {
            // Slot recycled or already finished: a stale entry just drained.
            sched.resolve_dead();
            return vec![];
        };
        if f.version != version {
            sched.resolve_dead();
            return vec![];
        }
        f.pending_completion = false;
        progress_to(f, now);
        if f.remaining > DRAIN_EPSILON {
            // Paranoia against floating-point slack (the ceil in `drain_eta`
            // makes this unreachable in practice): reschedule at the
            // corrected drain time under the same rate version — unless that
            // is below the clock's resolution, in which case the flow is
            // drained for every observable purpose.
            if f.rate <= 0.0 {
                return vec![]; // starved; a rebalance will reschedule it
            }
            let eta = drain_eta(f.remaining, f.rate);
            if eta > SimDuration::ZERO {
                f.pending_completion = true;
                sched.schedule_at(now + eta, NetEvent::FlowCompletion { flow, version }.into());
                return vec![];
            }
        }
        self.detach_active(flow.slot());
        let state = self.take_flow(flow).expect("flow just observed");
        // The departed flow's links must be re-filled at the flush this
        // requests; its component-list entry goes stale (a later gather
        // reclaims it) and its component's live count drops now.
        if self.tracks_components() && !state.route.links.is_empty() {
            self.comp.detach_one(state.route.links[0]);
            self.attached_flows -= 1;
            self.mark_dirty(&state.route.links);
        }
        let delivery = self.finish_flow(state);
        self.request_rebalance(sched);
        vec![delivery]
    }

    /// Remove a flow from the active list and the link incidence lists,
    /// fixing the back-pointers of the entries swapped into its places.
    fn detach_active(&mut self, slot_idx: u32) {
        let (active_pos, route, link_pos) = {
            let f = self.slots[slot_idx as usize]
                .state
                .as_mut()
                .expect("detaching a live flow");
            // The flow is destroyed by `take_flow` right after, so its
            // back-pointer vector can be taken rather than cloned.
            (
                f.active_pos as usize,
                Arc::clone(&f.route),
                std::mem::take(&mut f.link_pos),
            )
        };
        // Active list: swap-remove + back-pointer fix.
        self.active.swap_remove(active_pos);
        if let Some(&moved) = self.active.get(active_pos) {
            self.slots[moved as usize]
                .state
                .as_mut()
                .expect("active flows are live")
                .active_pos = active_pos as u32;
        }
        // Incidence lists: swap-remove at the recorded position per hop.
        for (&l, &pos) in route.links.iter().zip(&link_pos) {
            let list = &mut self.link_flows[l];
            list.swap_remove(pos as usize);
            if let Some(&moved) = list.get(pos as usize) {
                // The moved flow crosses link `l` at some hop: update that
                // hop's back-pointer (routes are a handful of links, so the
                // linear scan is cheap).
                let moved_state = self.slots[moved as usize]
                    .state
                    .as_mut()
                    .expect("incident flows are live");
                let hop = moved_state
                    .route
                    .links
                    .iter()
                    .position(|&ml| ml == l)
                    .expect("moved flow crosses the link it was listed on");
                moved_state.link_pos[hop] = pos;
            }
        }
    }

    /// Remove a flow from the slab, recycling its slot.
    fn take_flow(&mut self, id: FlowId) -> Option<FlowState> {
        let slot = self.slots.get_mut(id.slot() as usize)?;
        if slot.generation != id.generation() {
            return None;
        }
        let state = slot.state.take()?;
        slot.generation = slot.generation.wrapping_add(1);
        self.free_slots.push(id.slot());
        self.live_flows -= 1;
        Some(state)
    }

    fn finish_flow(&mut self, state: FlowState) -> FlowDelivery {
        self.stats.flows_completed += 1;
        self.stats.bytes_delivered += state.size.bytes();
        for &l in &state.route.links {
            self.stats.link_bytes[l] += state.size.bytes();
        }
        FlowDelivery {
            flow: state.id,
            token: state.token,
            src: state.src,
            dst: state.dst,
            size: state.size,
        }
    }

    /// Recompute max–min rates and reschedule completions — but only for the
    /// flows whose rate actually changed. Under the dirty-component engine
    /// the recompute (and the reschedule walk) covers only the component(s)
    /// holding dirty links; other engines cover the whole active set.
    fn rebalance<E: NetWorldEvent>(&mut self, sched: &mut Scheduler<E>) {
        let now = sched.now();
        if self.tracks_components() {
            if !self.recompute_rates_dirty() {
                return; // nothing dirty: no rate can have changed
            }
            let walk = std::mem::take(&mut self.comp_flows);
            for &slot_idx in &walk {
                self.reschedule_if_changed(sched, slot_idx as usize, now);
            }
            self.comp_flows = walk;
        } else {
            self.recompute_rates();
            for i in 0..self.active.len() {
                let slot_idx = self.active[i] as usize;
                self.reschedule_if_changed(sched, slot_idx, now);
            }
        }
    }

    /// Apply one flow's freshly computed `new_rate`: if it differs from the
    /// current rate, bring the drain up to date, bump the version and
    /// reschedule the completion.
    fn reschedule_if_changed<E: NetWorldEvent>(
        &mut self,
        sched: &mut Scheduler<E>,
        slot_idx: usize,
        now: SimTime,
    ) {
        let f = self.slots[slot_idx]
            .state
            .as_mut()
            .expect("active flows are live");
        let old = f.rate;
        let new = f.new_rate;
        // Exact comparison on purpose: the fill is deterministic and
        // independent of seeding order (bottleneck ties break by link
        // index in both the scan and the bucket queue), so a flow whose
        // allocation truly did not change re-derives the *bit-identical*
        // rate. A relative epsilon here would freeze whatever intermediate
        // rate a per-event rebalance happened to assign first, making the
        // final rate path-dependent — which is exactly what would break
        // the batched ≡ per-event and dirty ≡ full guarantees.
        if new == old {
            return;
        }
        // Bring the drain up to date under the old rate, then switch.
        progress_to(f, now);
        f.rate = new;
        f.version += 1;
        if f.pending_completion {
            // The completion scheduled under the old rate is now stale.
            f.pending_completion = false;
            sched.mark_dead();
        }
        let eta = if f.remaining <= DRAIN_EPSILON {
            SimDuration::ZERO
        } else if new <= 0.0 {
            return; // starved; rescheduled when a rebalance feeds it
        } else {
            drain_eta(f.remaining, new)
        };
        let event = NetEvent::FlowCompletion {
            flow: f.id,
            version: f.version,
        };
        f.pending_completion = true;
        sched.schedule_at(now + eta, event.into());
    }

    /// Progressive-filling max–min fairness over the active flows, using the
    /// persistent incidence lists and epoch-stamped flat scratch arrays.
    /// Results land in each active flow's `new_rate`.
    fn recompute_rates(&mut self) {
        self.epoch += 1;
        let epoch = self.epoch;
        self.touched_links.clear();
        let mut unfixed_flows = 0usize;
        for i in 0..self.active.len() {
            let slot_idx = self.active[i] as usize;
            let f = self.slots[slot_idx]
                .state
                .as_mut()
                .expect("active flows are live");
            if f.route.links.is_empty() {
                f.new_rate = LOOPBACK_RATE;
                f.fixed_epoch = epoch;
                continue;
            }
            f.new_rate = 0.0;
            f.fixed_epoch = 0;
            unfixed_flows += 1;
            let route = Arc::clone(&f.route);
            for &l in &route.links {
                if self.link_epoch[l] != epoch {
                    self.link_epoch[l] = epoch;
                    self.link_capacity[l] = self.platform.links()[l].bandwidth.bytes_per_sec();
                    self.link_unfixed[l] = 0;
                    self.touched_links.push(l);
                }
                self.link_unfixed[l] += 1;
            }
        }
        match self.config.engine {
            RebalanceEngine::ScanPerEvent => self.fill_by_scan(epoch, unfixed_flows),
            // The component-tracking engines never take this path (their
            // flushes go through `recompute_rates_dirty`), but the bucket
            // fill is their fill too.
            RebalanceEngine::BucketedBatched
            | RebalanceEngine::DirtyComponent
            | RebalanceEngine::ParallelShard
            | RebalanceEngine::WarmStart => self.fill_by_bucket_queue(epoch, unfixed_flows),
        }
    }

    /// Dirty-component–limited progressive filling: gather the flows of
    /// every component containing a dirty link, re-run the fill over just
    /// those, and rebuild exact connectivity for the flushed region.
    /// Returns `false` when nothing was dirty (no fill ran — no active
    /// flow's rate can have changed, because rates outside the dirty
    /// components are a function of state that did not change).
    ///
    /// The gathered set is *conservative*: union–find cannot split, so a
    /// component may still span flows that a departed flow used to bridge.
    /// Recomputing a superset is harmless — the fill is a pure function of
    /// each true component's flow set, so unbridged flows re-derive
    /// bit-identical rates and are not rescheduled. Small flushes pay a
    /// region rebuild at the end to re-split exactly; a flush already
    /// spanning most of the active set skips it (see phase 4).
    fn recompute_rates_dirty(&mut self) -> bool {
        if self.dirty_links.is_empty() {
            return false;
        }
        // Match the worker pool to the configuration before any dispatch
        // decision reads it (no-op unless the config changed or this is a
        // parallel engine's first flush).
        self.ensure_pool();
        self.epoch += 1;
        let epoch = self.epoch;
        // Phase 1: resolve the distinct dirty component roots and count the
        // live flows they cover. When that covers most (≥ 3/4) of the
        // attached flows — globally coupled traffic, the dirty engine's
        // degenerate case — a component-limited flush saves little fill work
        // but still pays the full list-gathering traffic, so take the dense
        // fast path instead: skip the list machinery and recompute the whole
        // active set exactly like the full engines do (`gathered` false).
        // That is always safe, whatever `covered` says: recomputing
        // everything is the maximal superset, and clean components re-derive
        // bit-identical rates (no reschedules). The fast path defers
        // stale-entry GC, so it is declined once the dirty region's own
        // deferred debt passes half the region's live population — the next
        // slow flush gathers (and reclaims) those lists. The debt is
        // tracked per component root, so stale entries parked in components
        // that never go dirty again cannot force every future flush onto
        // the gather path.
        self.dirty_roots.clear();
        let mut covered = 0usize;
        let mut stale_covered = 0usize;
        for i in 0..self.dirty_links.len() {
            let root = self.comp.find(self.dirty_links[i]);
            if self.comp_stamp[root] != epoch {
                self.comp_stamp[root] = epoch;
                self.dirty_roots.push(root);
                covered += self.comp.live_of_root(root) as usize;
                stale_covered += self.comp.stale_of_root(root) as usize;
            }
        }
        // The warm engine's flush is per-component by construction (one
        // record per component); it branches off here with the dirty roots
        // resolved and handles its own dense fallback, sharding and dirty-set
        // consumption.
        if self.config.engine == RebalanceEngine::WarmStart {
            self.flush_warm(epoch, covered, stale_covered);
            self.dirty_links.clear();
            self.dirty_gen += 1;
            self.warm_arrivals.clear();
            return true;
        }
        // The parallel engine wants the per-component lists whenever the
        // flush spans several components and clears the work threshold —
        // *even* when the dense fast path would apply: a fork–join over the
        // components beats the serial whole-active-set walk precisely on
        // those big flushes, and gathering is what produces the shardable
        // partition. (Rates are identical either way; only which path
        // computes them changes.)
        let parallel_wanted = self.config.engine == RebalanceEngine::ParallelShard
            && self.pool.is_some()
            && self.dirty_roots.len() >= 2
            && covered >= self.config.parallel_threshold.max(1);
        let gathered =
            parallel_wanted || covered * 4 < self.attached_flows * 3 || stale_covered * 2 > covered;
        self.flush_stats.flushes += 1;
        if !gathered {
            self.flush_stats.fast_flushes += 1;
        }
        self.comp_flows.clear();
        if !gathered {
            for i in 0..self.active.len() {
                let slot_idx = self.active[i];
                let f = self.slots[slot_idx as usize]
                    .state
                    .as_ref()
                    .expect("active flows are live");
                if !f.route.links.is_empty() {
                    self.comp_flows.push(slot_idx);
                }
            }
        } else {
            // Phase 2: gather the dirty components' flow lists, unlinking
            // stale entries of finished flows as we go (this is their
            // garbage collection — the generation check rejects recycled
            // slots) — then order the survivors like `active`, so the
            // reschedule walk emits events in the exact order a full
            // recompute would. For small components the order comes from
            // sorting by `active_pos`; for components dense in the active
            // set it is cheaper to filter the active list itself (epoch
            // stamps mark membership). All paths yield the identical
            // sequence — the relative `active` order.
            self.comp_raw.clear();
            self.root_ranges.clear();
            for i in 0..self.dirty_roots.len() {
                let root = self.dirty_roots[i];
                let slots = &self.slots;
                let start = self.comp_raw.len() as u32;
                // Dropped (stale) entries decrement the root's `listed`
                // count inside `gather`, clearing its deferred-GC debt.
                self.comp.gather(root, &mut self.comp_raw, |id| {
                    slots
                        .get(id.slot() as usize)
                        .is_some_and(|s| s.generation == id.generation() && s.state.is_some())
                });
                self.root_ranges.push((start, self.comp_raw.len() as u32));
            }
            for i in 0..self.comp_raw.len() {
                let id = self.comp_raw[i];
                let f = self.flow_mut(id).expect("gathered flows are live");
                debug_assert!(f.active, "attached flows are active until taken");
                f.comp_epoch = epoch;
                self.comp_flows.push(id.slot());
            }
            if self.comp_flows.len() * 8 >= self.active.len() {
                self.comp_flows.clear();
                for i in 0..self.active.len() {
                    let slot_idx = self.active[i];
                    let f = self.slots[slot_idx as usize]
                        .state
                        .as_ref()
                        .expect("active flows are live");
                    if f.comp_epoch == epoch {
                        self.comp_flows.push(slot_idx);
                    }
                }
            } else {
                let slots = &self.slots;
                self.comp_flows.sort_unstable_by_key(|&s| {
                    slots[s as usize]
                        .state
                        .as_ref()
                        .expect("gathered flows are live")
                        .active_pos
                });
            }
        }
        // Phase 3: recompute the gathered flows' rates. A parallel-shard
        // flush bins whole components onto worker threads and fills each
        // bin against private scratch; otherwise (or when the shard
        // heuristic declines) seed the shared per-link scratch from the
        // component subset (the full path seeds from the whole active set;
        // the arithmetic is identical) and fill single-threaded. Either
        // path leaves identical `new_rate`s and an identical
        // `touched_links`/`link_epoch` view for phase 4.
        let sharded = parallel_wanted && self.fill_parallel(epoch);
        if !sharded {
            self.touched_links.clear();
            let mut unfixed_flows = 0usize;
            for i in 0..self.comp_flows.len() {
                let slot_idx = self.comp_flows[i] as usize;
                let f = self.slots[slot_idx]
                    .state
                    .as_mut()
                    .expect("gathered flows are live");
                f.new_rate = 0.0;
                f.fixed_epoch = 0;
                unfixed_flows += 1;
                let route = Arc::clone(&f.route);
                for &l in &route.links {
                    if self.link_epoch[l] != epoch {
                        self.link_epoch[l] = epoch;
                        self.link_capacity[l] = self.platform.links()[l].bandwidth.bytes_per_sec();
                        self.link_unfixed[l] = 0;
                        self.touched_links.push(l);
                    }
                    self.link_unfixed[l] += 1;
                }
            }
            self.flush_stats.flushed_flows += unfixed_flows as u64;
            self.fill_by_bucket_queue(epoch, unfixed_flows);
        }
        // Phase 4: when the flushed component is small relative to the
        // active set, rebuild exact connectivity for the region — clear the
        // dirty roots' lists, reset every region link (seeded above, or
        // dirty without surviving flows) to a singleton and re-attach the
        // survivors, really splitting off departed bridges. A flush already
        // spanning most of the active set skips this: re-splitting it could
        // not shrink future flushes by much, and the rebuild is the flush's
        // dominant overhead at that size. Skipping only coarsens the
        // partition (links orphaned by departures stay conservatively
        // attached until a later rebuild), never drops a connection — so
        // gathering stays a superset of the true dirty component either way.
        // (The whole-network fast path above never rebuilds: it did not
        // gather the lists, and clearing them would drop live entries.)
        if gathered && self.comp_flows.len() * 2 <= self.active.len() {
            self.flush_stats.rebuilds += 1;
            for i in 0..self.dirty_roots.len() {
                self.comp.clear_list(self.dirty_roots[i]);
            }
            for i in 0..self.touched_links.len() {
                self.comp.reset(self.touched_links[i]);
            }
            for i in 0..self.dirty_links.len() {
                let l = self.dirty_links[i];
                if self.link_epoch[l] != epoch {
                    self.comp.reset(l);
                }
            }
            for i in 0..self.comp_flows.len() {
                let slot_idx = self.comp_flows[i] as usize;
                let f = self.slots[slot_idx]
                    .state
                    .as_ref()
                    .expect("gathered flows are live");
                let (id, route) = (f.id, Arc::clone(&f.route));
                self.comp.attach(&route.links, id);
            }
        }
        // Phase 5: consume the dirty set.
        self.dirty_links.clear();
        self.dirty_gen += 1;
        true
    }

    /// The warm-start engine's flush: one [`WarmTask`] per dirty component,
    /// each resuming progressive filling from its persisted `FillRecord`
    /// when the record's component key still matches (the component has not
    /// merged since), or running a cold *recorded* fill of the gathered
    /// component otherwise. A dense multi-component flush falls back to the
    /// whole-active-set fast path, which cannot re-record and therefore
    /// invalidates the covered records.
    ///
    /// The resume level k* is the minimum over the component's dirty links
    /// of two bounds (see ARCHITECTURE.md for the proofs):
    ///
    /// * the link's recorded pop round — a departure on the link can only
    ///   change rounds from the one that froze it onward, and that round is
    ///   at most the pop round of every route link (the freeze round *is*
    ///   the first such pop);
    /// * when the link's current flow count exceeds its recorded seed
    ///   count (net arrivals), the first recorded round lex-≥ the link's
    ///   fresh fair share `(full capacity / new count, link)` — rounds
    ///   strictly below that key pop before the re-seeded link possibly
    ///   can, because per-link fair shares only grow as the fill fixes
    ///   flows. (For net departures this bound is wrong — the stale, larger
    ///   σ proves nothing — but the pop-round bound already covers them.)
    ///
    /// Every round below k* has its bottleneck outside the dirty set, so
    /// the recorded prefix is bit-identical to the prefix a cold fill of
    /// the current flow set would produce: its flows keep their rates and
    /// scheduled completions *without even being walked* — they are absent
    /// from `comp_flows`, which is the engine's entire speedup.
    fn flush_warm(&mut self, epoch: u64, covered: usize, stale_covered: usize) {
        self.flush_stats.flushes += 1;
        // Mirrors the parallel engine's shard appetite and the dirty
        // engine's dense-takeover heuristic — except that a single-component
        // flush never takes the fast path: it must gather anyway to have a
        // record to warm-start from next time, and burning the record on
        // the very workload the engine exists for (all churn in one
        // component) would pin it cold forever.
        let parallel_wanted = self.pool.is_some()
            && self.dirty_roots.len() >= 2
            && covered >= self.config.parallel_threshold.max(1);
        let dense = self.dirty_roots.len() >= 2
            && !parallel_wanted
            && covered * 4 >= self.attached_flows * 3
            && stale_covered * 2 <= covered;
        if dense {
            // Dense takeover: recompute the whole active set on the shared
            // scratch. The takeover has no per-component view, so it cannot
            // append to the records — keeping them would let a later warm
            // start resume from a sequence describing a flow set that no
            // longer exists. (Clean components' records stay: their flow
            // sets did not change, so they still equal a cold fill.)
            for i in 0..self.dirty_roots.len() {
                let root = self.dirty_roots[i];
                if self.warm_records[root].take().is_some() {
                    self.flush_stats.warm_invalidations += 1;
                }
            }
            self.flush_stats.fast_flushes += 1;
            self.comp_flows.clear();
            for i in 0..self.active.len() {
                let slot_idx = self.active[i];
                let f = self.slots[slot_idx as usize]
                    .state
                    .as_ref()
                    .expect("active flows are live");
                if !f.route.links.is_empty() {
                    self.comp_flows.push(slot_idx);
                }
            }
            self.touched_links.clear();
            let mut unfixed_flows = 0usize;
            for i in 0..self.comp_flows.len() {
                let slot_idx = self.comp_flows[i] as usize;
                let f = self.slots[slot_idx]
                    .state
                    .as_mut()
                    .expect("gathered flows are live");
                f.new_rate = 0.0;
                f.fixed_epoch = 0;
                unfixed_flows += 1;
                let route = Arc::clone(&f.route);
                for &l in &route.links {
                    if self.link_epoch[l] != epoch {
                        self.link_epoch[l] = epoch;
                        self.link_capacity[l] = self.platform.links()[l].bandwidth.bytes_per_sec();
                        self.link_unfixed[l] = 0;
                        self.touched_links.push(l);
                    }
                    self.link_unfixed[l] += 1;
                }
            }
            self.flush_stats.flushed_flows += unfixed_flows as u64;
            self.fill_by_bucket_queue(epoch, unfixed_flows);
            return;
        }
        let n_tasks = self.dirty_roots.len();
        while self.warm_tasks.len() < n_tasks {
            self.warm_tasks.push(WarmTask::default());
        }
        // Group the dirty links by owning task, resolving each once (the
        // root scan is linear in the dirty-root count, which a flush this
        // path handles keeps small).
        self.warm_dirty.clear();
        for i in 0..self.dirty_links.len() {
            let l = self.dirty_links[i];
            let root = self.comp.find(l);
            let t = self
                .dirty_roots
                .iter()
                .position(|&r| r == root)
                .expect("dirty roots cover every dirty link");
            self.warm_dirty.push((t as u32, l as u32));
        }
        let link_count = self.link_flows.len();
        let mut total = 0usize;
        for t in 0..n_tasks {
            let root = self.dirty_roots[t];
            let mut task = std::mem::take(&mut self.warm_tasks[t]);
            task.root = root as u32;
            task.flows.clear();
            let key = self.comp.key_of_root(root);
            let rec_valid = self.warm_records[root]
                .as_ref()
                .is_some_and(|r| r.key == key);
            if !rec_valid {
                // No record, or the component merged since it was made (the
                // union bumped both keys). Keys come from one monotone
                // counter and are never reused, so a stale record parked on
                // a since-demoted root can never alias a future key — drop
                // silently and run a cold recorded fill over the gathered
                // component. (Gathering also reclaims the root's deferred
                // stale-entry debt, exactly like a dirty-engine flush.)
                self.warm_records[root] = None;
                task.warm = false;
                let start = self.comp_raw.len();
                {
                    let slots = &self.slots;
                    self.comp.gather(root, &mut self.comp_raw, |id| {
                        slots
                            .get(id.slot() as usize)
                            .is_some_and(|s| s.generation == id.generation() && s.state.is_some())
                    });
                }
                for i in start..self.comp_raw.len() {
                    task.flows.push(self.comp_raw[i].slot());
                }
                self.comp_raw.truncate(start);
                task.rec = Some(Box::new(FillRecord {
                    key,
                    ..FillRecord::default()
                }));
                // The fresh record has no slots; loading it still bumps the
                // map generation (stale entries from an earlier flush must
                // not alias) and sizes the map arrays.
                task.load_map(link_count);
                task.k_star = 0;
            } else {
                task.warm = true;
                // A warm start never gathers, so the component's deferred
                // stale-entry debt would otherwise grow without bound; once
                // it passes the live population, pay one discard-gather
                // (unlinks the stale nodes — touches neither keys nor live
                // flows) to reclaim it.
                if self.comp.stale_of_root(root) > self.comp.live_of_root(root).max(64) {
                    let start = self.comp_raw.len();
                    let slots = &self.slots;
                    self.comp.gather(root, &mut self.comp_raw, |id| {
                        slots
                            .get(id.slot() as usize)
                            .is_some_and(|s| s.generation == id.generation() && s.state.is_some())
                    });
                    self.comp_raw.truncate(start);
                }
                task.rec = self.warm_records[root].take();
                task.load_map(link_count);
                let rec = task.rec.as_ref().expect("warm tasks hold records");
                let mut k = rec.rounds.len();
                for wi in 0..self.warm_dirty.len() {
                    let (ti, l) = self.warm_dirty[wi];
                    if ti as usize != t {
                        continue;
                    }
                    let l = l as usize;
                    let n_new = self.link_flows[l].len() as u32;
                    if let Some(rs) = task.slot_of(l) {
                        if rec.pop_round[rs] != NO_ROUND {
                            k = k.min(rec.pop_round[rs] as usize);
                        }
                        if n_new > rec.seed_unfixed[rs] {
                            let sigma =
                                self.platform.links()[l].bandwidth.bytes_per_sec() / n_new as f64;
                            k = k.min(rec.first_preemptable_round(sigma, l));
                        }
                    } else if n_new > 0 {
                        // A link the record never saw carried no flows when
                        // it was made; flows on it now are net arrivals.
                        let sigma =
                            self.platform.links()[l].bandwidth.bytes_per_sec() / n_new as f64;
                        k = k.min(rec.first_preemptable_round(sigma, l));
                    }
                }
                task.k_star = k as u32;
                let cut = if k == 0 {
                    0
                } else {
                    rec.rounds[k - 1].frozen_end as usize
                };
                #[cfg(debug_assertions)]
                for &id in &rec.frozen[..cut] {
                    debug_assert!(
                        self.slots.get(id.slot() as usize).is_some_and(|s| {
                            s.generation == id.generation() && s.state.is_some()
                        }),
                        "a departed flow froze at a round ≥ k*, so prefix flows are alive"
                    );
                }
                // Participants: the survivors of the replaced suffix (the
                // departed ones are exactly why it is being replayed)…
                for i in cut..rec.frozen.len() {
                    let id = rec.frozen[i];
                    if self
                        .slots
                        .get(id.slot() as usize)
                        .is_some_and(|s| s.generation == id.generation() && s.state.is_some())
                    {
                        task.flows.push(id.slot());
                    }
                }
                self.flush_stats.warm_starts += 1;
                self.flush_stats.warm_prefix_flows += cut as u64;
                self.flush_stats.warm_resume_rounds += k as u64;
            }
            total += task.flows.len();
            self.warm_tasks[t] = task;
        }
        // …plus every flow that arrived since the records were made (the
        // arrival log; cleared by the caller once the flush is consumed).
        // An arrival's links are dirty, so its component is always among
        // the tasks; cold tasks gathered it already.
        for i in 0..self.warm_arrivals.len() {
            let id = self.warm_arrivals[i];
            let Some(slot) = self.slots.get(id.slot() as usize) else {
                continue;
            };
            if slot.generation != id.generation() {
                continue; // arrived and fully drained before the flush
            }
            let Some(f) = slot.state.as_ref() else {
                continue;
            };
            debug_assert!(!f.route.links.is_empty(), "loopback flows are not logged");
            let first = f.route.links[0];
            let root = self.comp.find(first);
            let t = self
                .dirty_roots
                .iter()
                .position(|&r| r == root)
                .expect("an arrival's component is dirty");
            let task = &mut self.warm_tasks[t];
            if task.warm {
                task.flows.push(id.slot());
                total += 1;
            }
        }
        // Dispatch the tasks on the persistent pool when the flush is big
        // enough — same appetite as the parallel engine, no size binning
        // needed: each task already is one component, and bit-identity
        // holds at every worker budget because each fill is a pure function
        // of its component's flow set and record. Serially-run tasks (a
        // single component, or a below-threshold flush) instead get the
        // split-fill context: an oversized component's saturation rounds
        // are then work-stolen across the pool's workers — the
        // single-huge-component worst case finally shards. (The two are
        // mutually exclusive per flush: a task running *on* a pool worker
        // must not dispatch to the pool it is running on.)
        let parallel =
            self.pool.is_some() && n_tasks >= 2 && total >= self.config.parallel_threshold.max(1);
        let mut tasks = std::mem::take(&mut self.warm_tasks);
        let mut pool = self.pool.take();
        let mut split_workers = std::mem::take(&mut self.split_workers);
        let mut split_segs = std::mem::take(&mut self.split_segs);
        let mut steals = 0u64;
        {
            let slots = &self.slots;
            let link_flows = &self.link_flows;
            let links = self.platform.links();
            if parallel {
                let pool = pool.as_mut().expect("parallel warm flushes have a pool");
                pool.for_each_mut(&mut tasks[..n_tasks], |task| {
                    task.run(slots, link_flows, links, None)
                });
            } else {
                let split_min = self.config.resolved_split_min();
                let mut split = pool.as_mut().map(|pool| SplitCtx {
                    pool,
                    workers: &mut split_workers,
                    segs: &mut split_segs,
                    split_min,
                    steals: &mut steals,
                });
                for task in &mut tasks[..n_tasks] {
                    task.run(slots, link_flows, links, split.as_mut());
                }
            }
        }
        self.warm_tasks = tasks;
        self.pool = pool;
        self.split_workers = split_workers;
        self.split_segs = split_segs;
        self.flush_stats.steals += steals;
        if parallel {
            self.flush_stats.parallel_flushes += 1;
            self.flush_stats.shards_dispatched += n_tasks as u64;
        }
        // Merge: store the refreshed records, apply the participant rates
        // and order the reschedule walk like `active` — the kept prefixes'
        // flows appear nowhere in it.
        self.comp_flows.clear();
        for t in 0..n_tasks {
            let task = &mut self.warm_tasks[t];
            let rec = task.rec.take().expect("the fill returns the record");
            self.warm_records[task.root as usize] = Some(rec);
            for &slot_idx in &task.flows {
                let f = self.slots[slot_idx as usize]
                    .state
                    .as_mut()
                    .expect("participants are live");
                f.new_rate = task.scratch.flow_rate[slot_idx as usize];
                f.comp_epoch = epoch;
                self.comp_flows.push(slot_idx);
            }
        }
        self.flush_stats.flushed_flows += total as u64;
        if self.comp_flows.len() * 8 >= self.active.len() {
            self.comp_flows.clear();
            for i in 0..self.active.len() {
                let slot_idx = self.active[i];
                let f = self.slots[slot_idx as usize]
                    .state
                    .as_ref()
                    .expect("active flows are live");
                if f.comp_epoch == epoch {
                    self.comp_flows.push(slot_idx);
                }
            }
        } else {
            let slots = &self.slots;
            self.comp_flows.sort_unstable_by_key(|&s| {
                slots[s as usize]
                    .state
                    .as_ref()
                    .expect("participants are live")
                    .active_pos
            });
        }
    }

    /// Sharded phase 3 of a parallel flush: partition the gathered dirty
    /// components into size-balanced bins (greedy longest-processing-time
    /// over per-component gathered counts), fill every bin on a scoped
    /// worker thread against private scratch, then merge the thread-local
    /// rate buffers back into the flow table. Returns `false` (leaving the
    /// shared fill state untouched) when fewer than two non-empty
    /// components survive gathering or the gathered total is below the work
    /// threshold — the caller then runs the single-threaded fill.
    ///
    /// Determinism: the bins only decide *which thread* computes a
    /// component's rates — the fill is a pure function of each component's
    /// flow set, components share no links or flows, and the merge (plus
    /// the caller's reschedule walk over `comp_flows`) follows global
    /// active order, so results are bit-identical to the single-threaded
    /// flush at every thread count.
    fn fill_parallel(&mut self, epoch: u64) -> bool {
        if self.comp_flows.len() < self.config.parallel_threshold.max(1) {
            return false;
        }
        self.shard_order.clear();
        for (i, &(a, b)) in self.root_ranges.iter().enumerate() {
            if b > a {
                self.shard_order.push(i as u32);
            }
        }
        if self.shard_order.len() < 2 {
            return false;
        }
        // Largest component first; ties break by gather order, keeping the
        // binning deterministic (not that results depend on it).
        let ranges = &self.root_ranges;
        self.shard_order.sort_unstable_by_key(|&i| {
            let (a, b) = ranges[i as usize];
            (std::cmp::Reverse(b - a), i)
        });
        let bins = self
            .pool
            .as_ref()
            .expect("a parallel fill is only wanted with a pool")
            .budget()
            .min(self.shard_order.len());
        while self.shard_tasks.len() < bins {
            self.shard_tasks.push(ShardTask::default());
        }
        for task in &mut self.shard_tasks[..bins] {
            task.flows.clear();
            task.load = 0;
        }
        for &oi in &self.shard_order {
            let (a, b) = self.root_ranges[oi as usize];
            let mut best = 0usize;
            for j in 1..bins {
                if self.shard_tasks[j].load < self.shard_tasks[best].load {
                    best = j;
                }
            }
            let task = &mut self.shard_tasks[best];
            task.load += (b - a) as usize;
            for k in a..b {
                task.flows.push(self.comp_raw[k as usize].slot());
            }
        }
        // Dispatch on the persistent pool: every worker reads the flow
        // table, incidence lists and platform immutably and writes only its
        // own scratch.
        let mut tasks = std::mem::take(&mut self.shard_tasks);
        let mut pool = self.pool.take().expect("a parallel fill has a pool");
        {
            let slots = &self.slots;
            let link_flows = &self.link_flows;
            let links = self.platform.links();
            pool.for_each_mut(&mut tasks[..bins], |task| {
                task.run(slots, link_flows, links)
            });
        }
        self.pool = Some(pool);
        // Merge: apply every shard's delta buffer to the flow table and
        // collect the seeded links (stamping the shared `link_epoch`, which
        // phase 4's region rebuild keys on). Each slot and each link lives
        // in exactly one shard, so the merge order cannot change the
        // outcome; the *observable* order — reschedules — comes from the
        // caller's walk of `comp_flows`, sorted by active order exactly
        // like a single-threaded flush.
        self.touched_links.clear();
        for task in &tasks[..bins] {
            for &slot_idx in &task.flows {
                self.slots[slot_idx as usize]
                    .state
                    .as_mut()
                    .expect("gathered flows are live")
                    .new_rate = task.scratch.flow_rate[slot_idx as usize];
            }
            for &l in &task.scratch.touched_links {
                self.link_epoch[l] = epoch;
                self.touched_links.push(l);
            }
        }
        self.shard_tasks = tasks;
        self.flush_stats.flushed_flows += self.comp_flows.len() as u64;
        self.flush_stats.parallel_flushes += 1;
        self.flush_stats.shards_dispatched += bins as u64;
        true
    }

    /// PR 1 bottleneck selection: a linear scan over every touched link per
    /// filling iteration. Retained as the differential/benchmark baseline of
    /// the bucket-queue engine.
    fn fill_by_scan(&mut self, epoch: u64, mut unfixed_flows: usize) {
        while unfixed_flows > 0 {
            // Bottleneck link = the smallest fair share among links that
            // still carry unfixed flows; ties break to the lowest link index
            // (the bucket queue applies the same rule), which keeps the fill
            // independent of the order the links were seeded in.
            let mut best: Option<(usize, f64)> = None;
            for &l in &self.touched_links {
                let n = self.link_unfixed[l];
                if n == 0 {
                    continue;
                }
                let share = self.link_capacity[l] / n as f64;
                if best.is_none_or(|(bl, s)| share < s || (share == s && l < bl)) {
                    best = Some((l, share));
                }
            }
            let Some((bottleneck, share)) = best else {
                break;
            };
            unfixed_flows -= self.fix_bottleneck_flows(epoch, bottleneck, share, None);
        }
    }

    /// Bucket-queue bottleneck selection: seed the monotone queue with every
    /// touched link's fair share, then pop minima directly; each filling
    /// round refreshes only the links its fixed flows cross.
    ///
    /// KEEP IN SYNC with [`ShardTask::run`] (see `fix_bottleneck_flows`).
    fn fill_by_bucket_queue(&mut self, epoch: u64, mut unfixed_flows: usize) {
        self.queue
            .seed(&self.touched_links, &self.link_capacity, &self.link_unfixed);
        let mut affected = std::mem::take(&mut self.affected_links);
        // Split machinery: rounds whose bottleneck incidence list reaches
        // the split threshold are fanned out across the pool (when one is
        // active — the parallel-capable engines only), bit-identically to
        // `fix_bottleneck_flows`.
        let mut pool = self.pool.take();
        let mut split_workers = std::mem::take(&mut self.split_workers);
        let mut split_segs = std::mem::take(&mut self.split_segs);
        let split_min = self.config.resolved_split_min();
        while unfixed_flows > 0 {
            let Some((bottleneck, share)) = self.queue.pop_min() else {
                break;
            };
            // Collect the links crossed by this round's fixed flows, once
            // each (round-stamped), then refresh their queue keys.
            affected.clear();
            unfixed_flows -= match pool.as_mut() {
                Some(pool) if self.link_flows[bottleneck].len() >= split_min => self.fix_split(
                    pool,
                    &mut split_workers,
                    &mut split_segs,
                    epoch,
                    bottleneck,
                    share,
                    &mut affected,
                ),
                _ => self.fix_bottleneck_flows(epoch, bottleneck, share, Some(&mut affected)),
            };
            for &l in &affected {
                if l == bottleneck {
                    continue; // popped above; its unfixed count drops to 0
                }
                let n = self.link_unfixed[l];
                if n == 0 {
                    self.queue.remove(l);
                } else {
                    self.queue.set(l, self.link_capacity[l] / n as f64);
                }
            }
        }
        self.queue.clear();
        self.affected_links = affected;
        self.pool = pool;
        self.split_workers = split_workers;
        self.split_segs = split_segs;
    }

    /// Fix every unfixed flow crossing `bottleneck` at `share`, releasing
    /// that much capacity on each link those flows cross. Returns the number
    /// of flows fixed. When `affected` is given, every link whose capacity
    /// or count changed is collected into it exactly once (round-stamped) so
    /// the bucket-queue engine can refresh just those keys.
    ///
    /// KEEP IN SYNC with [`ShardTask::run`], which inlines this arithmetic
    /// against shard-local scratch: any change to the dust rule, the
    /// capacity subtraction or the affected-link collection must be
    /// mirrored there, or the parallel engine's bit-identity to the
    /// single-threaded fill breaks (the five-way differential property in
    /// `tests/props.rs` is the tripwire).
    fn fix_bottleneck_flows(
        &mut self,
        epoch: u64,
        bottleneck: usize,
        share: f64,
        mut affected: Option<&mut Vec<usize>>,
    ) -> usize {
        self.fill_round += 1;
        let round = self.fill_round;
        let mut fixed = 0usize;
        for i in 0..self.link_flows[bottleneck].len() {
            let slot_idx = self.link_flows[bottleneck][i] as usize;
            let f = self.slots[slot_idx]
                .state
                .as_mut()
                .expect("incident flows are live");
            if f.fixed_epoch == epoch {
                continue;
            }
            f.fixed_epoch = epoch;
            // Float cancellation in the capacity subtractions can leave a
            // link with dust capacity; a "fair share" of dust is not a
            // real allocation. Treat it as starvation (rate 0, no event)
            // — the flow is revived by the next genuine rebalance —
            // instead of scheduling a completion centuries out.
            f.new_rate = if share < MIN_RATE { 0.0 } else { share };
            fixed += 1;
            let route = Arc::clone(&f.route);
            for &l in &route.links {
                self.link_capacity[l] = (self.link_capacity[l] - share).max(0.0);
                self.link_unfixed[l] -= 1;
                if let Some(list) = affected.as_deref_mut() {
                    if self.link_round[l] != round {
                        self.link_round[l] = round;
                        list.push(l);
                    }
                }
            }
        }
        fixed
    }

    /// Work-stolen variant of [`Network::fix_bottleneck_flows`]: phase A
    /// fans the bottleneck's incidence scan out across the pool's workers
    /// (chunk claiming from a shared cursor, results in private
    /// [`SplitScratch`]), phase B merges serially in exact incidence order.
    /// Bit-identical to the serial fix at every worker budget — see
    /// [`split_scan`] / [`split_collect_segs`] for the order argument and
    /// the capacity-release commutativity note in [`WarmTask::run`].
    ///
    /// KEEP IN SYNC with `fix_bottleneck_flows`: same dust rule, same
    /// subtraction form, same affected-link collection.
    #[allow(clippy::too_many_arguments)]
    fn fix_split(
        &mut self,
        pool: &mut WorkerPool,
        workers: &mut Vec<SplitScratch>,
        segs: &mut Vec<(u32, u32, u32, u32)>,
        epoch: u64,
        bottleneck: usize,
        share: f64,
        affected: &mut Vec<usize>,
    ) -> usize {
        let budget = pool.budget();
        while workers.len() < budget {
            workers.push(SplitScratch::default());
        }
        {
            let list = &self.link_flows[bottleneck];
            let slots = &self.slots;
            split_scan(
                pool,
                &mut workers[..budget],
                list,
                split_chunk(list.len(), budget),
                self.link_flows.len(),
                slots,
                |si| {
                    slots[si]
                        .state
                        .as_ref()
                        .expect("incident flows are live")
                        .fixed_epoch
                        != epoch
                },
            );
        }
        split_collect_segs(workers, budget, segs);
        self.fill_round += 1;
        let round = self.fill_round;
        let mut fixed = 0usize;
        for &(_, w, a, b) in segs.iter() {
            for &slot_idx in &workers[w as usize].fixed[a as usize..b as usize] {
                let f = self.slots[slot_idx as usize]
                    .state
                    .as_mut()
                    .expect("incident flows are live");
                f.fixed_epoch = epoch;
                f.new_rate = if share < MIN_RATE { 0.0 } else { share };
                fixed += 1;
            }
        }
        for ws in &workers[..budget] {
            for &l32 in &ws.touched {
                let l = l32 as usize;
                for _ in 0..ws.link_count[l] {
                    self.link_capacity[l] = (self.link_capacity[l] - share).max(0.0);
                }
                self.link_unfixed[l] -= ws.link_count[l];
                if self.link_round[l] != round {
                    self.link_round[l] = round;
                    affected.push(l);
                }
            }
        }
        self.flush_stats.steals += 1;
        fixed
    }

    /// Run one compaction pass if the [`CompactionPolicy`] says the heap has
    /// accumulated enough dead entries. Called after every rebalance.
    fn maybe_compact<E: NetWorldEvent>(&mut self, sched: &mut Scheduler<E>) {
        self.compact_if_due(sched);
    }

    /// Apply the [`CompactionPolicy`] decision once: compact if — and only
    /// if — the heap holds at least `min_dead` dead entries *and* dead
    /// entries strictly outnumber `live × dead_per_live`. Returns whether a
    /// pass ran.
    ///
    /// The network calls this itself after every rebalance; it is public so
    /// tests (and callers with unusual event loops) can exercise the policy
    /// boundary directly against an arbitrary heap state.
    pub fn compact_if_due<E: NetWorldEvent>(&mut self, sched: &mut Scheduler<E>) -> bool {
        let dead = sched.dead_pending();
        if dead < self.compaction.min_dead {
            return false;
        }
        let live = sched.live_pending() as u64;
        if dead > live.saturating_mul(u64::from(self.compaction.dead_per_live)) {
            self.compact_events(sched);
            self.compactions += 1;
            return true;
        }
        false
    }

    /// Drop every stale completion entry from the heap, preserving the
    /// firing order of the survivors.
    ///
    /// The network runs this automatically after rebalances according to its
    /// [`CompactionPolicy`]; calling it manually is only useful to reclaim
    /// heap memory at a point the policy would not have chosen (say, right
    /// before a long quiescent phase of a simulation).
    pub fn compact_events<E: NetWorldEvent>(&self, sched: &mut Scheduler<E>) -> usize {
        sched.compact_pending(|event| match event.as_net_event() {
            // A version match is the live test for completions. (It must not
            // be tightened with `pending_completion`: Bottleneck-mode flows
            // schedule their single completion without ever setting that
            // flag, and their events are always live.)
            Some(NetEvent::FlowCompletion { flow, version }) => {
                self.flow(flow).is_some_and(|f| f.version == version)
            }
            Some(NetEvent::FlowActivate { flow }) => self.flow(flow).is_some(),
            Some(NetEvent::Rebalance) => true,
            None => true,
        })
    }

    /// Approximate heap bytes held by the engine's persistent state: the
    /// flow slab and every flow's `link_pos` back-pointer slice, the link
    /// incidence lists, the union–find component partition and its dirty
    /// tracking, and the warm-start fill records — i.e. everything a
    /// checkpoint captures. Allocator overhead is not counted; the number
    /// is a comparable telemetry figure, not an RSS prediction.
    pub fn memory_footprint(&self) -> MemoryFootprint {
        use std::mem::size_of;
        let slab_bytes = self.slots.capacity() * size_of::<Slot>()
            + self.free_slots.capacity() * size_of::<u32>()
            + self
                .slots
                .iter()
                .filter_map(|s| s.state.as_ref())
                .map(|f| f.link_pos.len() * size_of::<u32>())
                .sum::<usize>();
        let incidence_bytes = self.link_flows.capacity() * size_of::<Vec<u32>>()
            + self
                .link_flows
                .iter()
                .map(|l| l.capacity() * size_of::<u32>())
                .sum::<usize>()
            + self.active.capacity() * size_of::<u32>();
        let component_bytes = self.comp.heap_bytes()
            + self.dirty_links.capacity() * size_of::<usize>()
            + self.dirty_mark.capacity() * size_of::<u64>()
            + self.comp_stamp.capacity() * size_of::<u64>()
            + self.dirty_roots.capacity() * size_of::<usize>()
            + self.comp_raw.capacity() * size_of::<FlowId>()
            + self.root_ranges.capacity() * size_of::<(u32, u32)>()
            + self.comp_flows.capacity() * size_of::<u32>();
        let warm_bytes = self.warm_records.capacity() * size_of::<Option<Box<FillRecord>>>()
            + self
                .warm_records
                .iter()
                .flatten()
                .map(|r| r.heap_bytes())
                .sum::<usize>()
            + self.warm_arrivals.capacity() * size_of::<FlowId>();
        let pool_bytes = self.shard_order.capacity() * size_of::<u32>()
            + self.shard_tasks.capacity() * size_of::<ShardTask>()
            + self
                .shard_tasks
                .iter()
                .map(ShardTask::heap_bytes)
                .sum::<usize>()
            + self.warm_tasks.capacity() * size_of::<WarmTask>()
            + self
                .warm_tasks
                .iter()
                .map(WarmTask::heap_bytes)
                .sum::<usize>()
            + self.split_workers.capacity() * size_of::<SplitScratch>()
            + self
                .split_workers
                .iter()
                .map(SplitScratch::heap_bytes)
                .sum::<usize>()
            + self.split_segs.capacity() * size_of::<(u32, u32, u32, u32)>();
        MemoryFootprint {
            slab_bytes,
            incidence_bytes,
            component_bytes,
            warm_bytes,
            pool_bytes,
            live_flows: self.live_flows,
        }
    }

    /// Current rate (bytes/s) of a flow, for tests and diagnostics.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.flow(flow).map(|f| f.rate)
    }

    /// Snapshot of the active flows — `(id, route, rate)` — for invariant
    /// checks and diagnostics.
    pub fn active_flows(&self) -> Vec<(FlowId, Arc<Route>, f64)> {
        self.active
            .iter()
            .map(|&s| {
                let f = self.slots[s as usize]
                    .state
                    .as_ref()
                    .expect("active flows are live");
                (f.id, Arc::clone(&f.route), f.rate)
            })
            .collect()
    }
}

/// Encode one live flow. The route is *not* stored: it is re-derived on
/// restore from `(src, dst)` by the platform's deterministic Dijkstra, which
/// yields the identical link sequence (and therefore identical sharing
/// behaviour). The fill scratch fields (`fixed_epoch`, `comp_epoch`,
/// `new_rate`) are dead between events — checkpoints happen at event
/// boundaries — and restart at zero.
fn flow_to_value(f: &FlowState) -> Value {
    Value::Object(vec![
        ("id".to_owned(), f.id.to_value()),
        ("src".to_owned(), f.src.to_value()),
        ("dst".to_owned(), f.dst.to_value()),
        ("token".to_owned(), f.token.to_value()),
        ("size".to_owned(), f.size.to_value()),
        ("remaining".to_owned(), f.remaining.to_value()),
        ("rate".to_owned(), f.rate.to_value()),
        ("last_progress".to_owned(), f.last_progress.to_value()),
        ("active".to_owned(), f.active.to_value()),
        ("version".to_owned(), f.version.to_value()),
        (
            "pending_completion".to_owned(),
            f.pending_completion.to_value(),
        ),
        ("active_pos".to_owned(), f.active_pos.to_value()),
        ("link_pos".to_owned(), f.link_pos.as_ref().to_value()),
    ])
}

/// Decode one live flow, re-deriving its route from the restored platform.
fn flow_from_value(v: &Value, platform: &Platform) -> Result<FlowState, DeError> {
    let fields = v
        .as_object()
        .ok_or_else(|| DeError::expected("object", "FlowState", v))?;
    let src: HostId = serde::field(fields, "src", "FlowState")?;
    let dst: HostId = serde::field(fields, "dst", "FlowState")?;
    for h in [src, dst] {
        if h.index() >= platform.host_count() {
            return Err(DeError::msg(format!(
                "FlowState: no route between hosts {src:?} and {dst:?} in the restored \
                 platform ({h} is not a host)"
            )));
        }
    }
    let route = platform.route_uncached(src, dst).ok_or_else(|| {
        DeError::msg(format!(
            "FlowState: no route between hosts {src:?} and {dst:?} in the restored platform"
        ))
    })?;
    let link_pos: Vec<u32> = serde::field(fields, "link_pos", "FlowState")?;
    if link_pos.len() != route.links.len() {
        return Err(DeError::msg(format!(
            "FlowState: link_pos has {} hops but the re-derived route has {}",
            link_pos.len(),
            route.links.len()
        )));
    }
    Ok(FlowState {
        id: serde::field(fields, "id", "FlowState")?,
        src,
        dst,
        token: serde::field(fields, "token", "FlowState")?,
        size: serde::field(fields, "size", "FlowState")?,
        route: Arc::new(route),
        remaining: serde::field(fields, "remaining", "FlowState")?,
        rate: serde::field(fields, "rate", "FlowState")?,
        last_progress: serde::field(fields, "last_progress", "FlowState")?,
        active: serde::field(fields, "active", "FlowState")?,
        version: serde::field(fields, "version", "FlowState")?,
        pending_completion: serde::field(fields, "pending_completion", "FlowState")?,
        active_pos: serde::field(fields, "active_pos", "FlowState")?,
        link_pos: link_pos.into_boxed_slice(),
        fixed_epoch: 0,
        comp_epoch: 0,
        new_rate: 0.0,
    })
}

/// Serialization captures every piece of state the simulation's *future*
/// depends on — the slab flow table (routes re-derived, not stored), the
/// link→flow incidence lists, the union–find component index verbatim (the
/// partition is history-dependent and the warm records key on its roots),
/// the pending dirty-link set, the per-component warm-start `FillRecord`s,
/// the arrival log, telemetry counters, and configuration — and none of the
/// epoch-stamped fill scratch, which is dead between events and restarts
/// zeroed exactly as a fresh `Network` would.
///
/// Warm records are captured rather than dropped deliberately: a restore is
/// a *pause*, not a perturbation. Timestamps would come out identical either
/// way (a cold fill re-derives the same rates), but dropping the records
/// would change `FlushStats` telemetry and post-restore flush costs relative
/// to the uninterrupted run — observable drift the restore-identity suite
/// would have to carve exceptions for.
impl Serialize for Network {
    fn to_value(&self) -> Value {
        let slots: Vec<Value> = self
            .slots
            .iter()
            .map(|slot| {
                Value::Object(vec![
                    ("generation".to_owned(), slot.generation.to_value()),
                    (
                        "flow".to_owned(),
                        match &slot.state {
                            Some(f) => flow_to_value(f),
                            None => Value::Null,
                        },
                    ),
                ])
            })
            .collect();
        Value::Object(vec![
            ("platform".to_owned(), self.platform.to_value()),
            ("mode".to_owned(), self.mode.to_value()),
            ("engine_config".to_owned(), self.config.to_value()),
            ("slots".to_owned(), Value::Array(slots)),
            ("free_slots".to_owned(), self.free_slots.to_value()),
            ("active".to_owned(), self.active.to_value()),
            ("link_flows".to_owned(), self.link_flows.to_value()),
            ("comp".to_owned(), self.comp.to_value()),
            (
                "attached_flows".to_owned(),
                (self.attached_flows as u64).to_value(),
            ),
            ("dirty_links".to_owned(), self.dirty_links.to_value()),
            (
                "rebalance_pending".to_owned(),
                self.rebalance_pending.to_value(),
            ),
            ("warm_records".to_owned(), self.warm_records.to_value()),
            ("warm_arrivals".to_owned(), self.warm_arrivals.to_value()),
            (
                "flush_stats".to_owned(),
                // Fold the live pool's deterministic dispatch count in, but
                // force `park_wakeups` — an OS-scheduling artifact — to 0 so
                // checkpoint bytes stay a pure function of simulation state.
                {
                    let mut fs = self.flush_stats();
                    fs.park_wakeups = 0;
                    fs.to_value()
                },
            ),
            ("compaction".to_owned(), self.compaction.to_value()),
            ("compactions".to_owned(), self.compactions.to_value()),
            ("stats".to_owned(), self.stats.to_value()),
        ])
    }
}

impl Deserialize for Network {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Network", v))?;
        let platform: Platform = serde::field(fields, "platform", "Network")?;
        let mode: SharingMode = serde::field(fields, "mode", "Network")?;
        let config: EngineConfig = serde::field(fields, "engine_config", "Network")?;
        if let Err(e) = config.validate() {
            return Err(DeError::msg(format!("Network: invalid engine_config: {e}")));
        }
        let mut net = Network::with_config(platform, mode, config);
        let link_count = net.platform.links().len();

        let slots_v = fields
            .iter()
            .find(|(k, _)| k == "slots")
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::msg("missing field `slots` while deserializing Network"))?;
        let slot_entries = slots_v
            .as_array()
            .ok_or_else(|| DeError::expected("array", "Network.slots", slots_v))?;
        let mut slots = Vec::with_capacity(slot_entries.len());
        let mut live_flows = 0usize;
        for (idx, entry) in slot_entries.iter().enumerate() {
            let slot_fields = entry
                .as_object()
                .ok_or_else(|| DeError::expected("object", "Network.slots", entry))?;
            let generation: u32 = serde::field(slot_fields, "generation", "Network.slots")?;
            let flow_v = slot_fields
                .iter()
                .find(|(k, _)| k == "flow")
                .map(|(_, v)| v)
                .ok_or_else(|| DeError::msg("Network.slots: missing `flow` field"))?;
            let state = match flow_v {
                Value::Null => None,
                other => {
                    let f = flow_from_value(other, &net.platform)?;
                    if f.id != FlowId::from_parts(idx as u32, generation) {
                        return Err(DeError::msg(format!(
                            "Network.slots: flow id {:?} does not match slot {idx} generation {generation}",
                            f.id
                        )));
                    }
                    live_flows += 1;
                    Some(f)
                }
            };
            slots.push(Slot { generation, state });
        }
        net.slots = slots;
        net.live_flows = live_flows;
        net.free_slots = serde::field(fields, "free_slots", "Network")?;
        net.active = serde::field(fields, "active", "Network")?;
        let link_flows: Vec<Vec<u32>> = serde::field(fields, "link_flows", "Network")?;
        if link_flows.len() != link_count {
            return Err(DeError::msg(format!(
                "Network: {} incidence lists for {} platform links",
                link_flows.len(),
                link_count
            )));
        }
        net.link_flows = link_flows;
        net.comp = serde::field(fields, "comp", "Network")?;
        net.attached_flows = serde::field::<u64>(fields, "attached_flows", "Network")? as usize;
        let dirty_links: Vec<usize> = serde::field(fields, "dirty_links", "Network")?;
        for &l in &dirty_links {
            if l >= link_count {
                return Err(DeError::msg(format!(
                    "Network: dirty link {l} outside the platform's {link_count} links"
                )));
            }
            net.dirty_mark[l] = net.dirty_gen;
        }
        net.dirty_links = dirty_links;
        net.rebalance_pending = serde::field(fields, "rebalance_pending", "Network")?;
        let warm_records: Vec<Option<Box<FillRecord>>> =
            serde::field(fields, "warm_records", "Network")?;
        if warm_records.len() != link_count {
            return Err(DeError::msg(format!(
                "Network: {} warm-record slots for {} platform links",
                warm_records.len(),
                link_count
            )));
        }
        net.warm_records = warm_records;
        net.warm_arrivals = serde::field(fields, "warm_arrivals", "Network")?;
        net.flush_stats = serde::field(fields, "flush_stats", "Network")?;
        net.compaction = serde::field(fields, "compaction", "Network")?;
        net.compactions = serde::field(fields, "compactions", "Network")?;
        let stats: NetStats = serde::field(fields, "stats", "Network")?;
        if stats.link_bytes.len() != link_count {
            return Err(DeError::msg(format!(
                "Network: {} link-byte counters for {} platform links",
                stats.link_bytes.len(),
                link_count
            )));
        }
        net.stats = stats;
        Ok(net)
    }
}

/// Time to drain `remaining` bytes at `rate`, rounded **up** to the clock's
/// nanosecond resolution.
///
/// Rounding up matters: with round-to-nearest the scheduled instant can
/// undershoot the true drain time by up to half a nanosecond, leaving a
/// residual above [`DRAIN_EPSILON`] when the completion event fires — which
/// would force a degenerate zero-delay reschedule. Ceiling the conversion
/// guarantees the flow is fully drained when its event fires.
pub(crate) fn drain_eta(remaining: f64, rate: f64) -> SimDuration {
    debug_assert!(rate > 0.0);
    // Cap absurd ETAs well below the clock's range so `now + eta` cannot
    // overflow `SimTime`'s unchecked nanosecond addition (u64::MAX / 4 ns is
    // ~146 simulated years — unreachable by any legitimate workload).
    const ETA_CAP_NS: f64 = (u64::MAX / 4) as f64;
    let ns = (remaining / rate) * 1e9;
    if !ns.is_finite() || ns >= ETA_CAP_NS {
        return SimDuration::from_nanos(u64::MAX / 4);
    }
    SimDuration::from_nanos(ns.ceil().max(0.0) as u64)
}

/// Advance one flow's `remaining` to `now` at its current rate.
///
/// Loopback flows (empty route) skip the elapsed-time arithmetic entirely:
/// they drain to zero at activation and their `remaining` never moves again.
fn progress_to(f: &mut FlowState, now: SimTime) {
    if !f.active || f.route.links.is_empty() {
        f.last_progress = now;
        return;
    }
    let dt = now.duration_since(f.last_progress).as_secs_f64();
    if dt > 0.0 && f.rate > 0.0 {
        f.remaining = (f.remaining - f.rate * dt).max(0.0);
    }
    f.last_progress = now;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{run_world, World};
    use crate::platform::{HostSpec, LinkSpec, PlatformBuilder};
    use p2p_common::Bandwidth;

    /// Minimal world recording flow deliveries.
    struct NetWorld {
        net: Network,
        deliveries: Vec<(SimTime, FlowDelivery)>,
    }

    #[derive(Debug, Clone, Copy, Serialize, Deserialize)]
    enum Ev {
        Net(NetEvent),
    }
    impl From<NetEvent> for Ev {
        fn from(e: NetEvent) -> Self {
            Ev::Net(e)
        }
    }
    impl NetWorldEvent for Ev {
        fn as_net_event(&self) -> Option<NetEvent> {
            let Ev::Net(e) = self;
            Some(*e)
        }
    }
    impl World for NetWorld {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            let Ev::Net(ne) = ev;
            let now = sched.now();
            for d in self.net.on_event(sched, ne) {
                self.deliveries.push((now, d));
            }
        }
    }

    /// Two hosts joined through one switch: 100 Mbps access links, 100 us each.
    fn dumbbell(mode: SharingMode) -> NetWorld {
        dumbbell_with(mode, RebalanceEngine::default())
    }

    fn dumbbell_with(mode: SharingMode, engine: RebalanceEngine) -> NetWorld {
        let mut b = PlatformBuilder::new();
        let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
        let sw = b.add_router("sw");
        for i in 0..4 {
            let h = b.add_host(
                format!("h{i}"),
                format!("10.0.0.{}", i + 1).parse().unwrap(),
                HostSpec::default(),
            );
            b.add_host_link(format!("l{i}"), h, sw, spec);
        }
        NetWorld {
            net: Network::with_engine(b.build(), mode, engine),
            deliveries: vec![],
        }
    }

    #[test]
    fn bottleneck_single_flow_timing_is_analytic() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        // 1.25 MB over 100 Mbps = 100 ms, plus 200 us of latency.
        w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(1),
            DataSize::from_bytes(1_250_000),
            7,
        );
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 1);
        let (t, d) = w.deliveries[0];
        assert_eq!(t, SimTime::from_micros(100_200));
        assert_eq!(d.token, 7);
        assert_eq!(d.size, DataSize::from_bytes(1_250_000));
        assert_eq!(w.net.stats().flows_completed, 1);
        assert_eq!(w.net.stats().bytes_delivered, 1_250_000);
    }

    #[test]
    fn maxmin_single_flow_matches_bottleneck() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(1),
            DataSize::from_bytes(1_250_000),
            0,
        );
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 1);
        let (t, _) = w.deliveries[0];
        // Pipe-fill model: latency (200us) then drain at 100 Mbps (100ms).
        let expected = SimTime::from_micros(100_200);
        let err = (t.as_secs_f64() - expected.as_secs_f64()).abs();
        assert!(err < 1e-6, "got {t}, expected about {expected}");
    }

    #[test]
    fn maxmin_two_flows_share_a_common_link() {
        // Both flows have h0 as destination, so they share h0's access link.
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000); // 100 ms alone
        w.net
            .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
        let last = w.deliveries.iter().map(|&(t, _)| t).max().unwrap();
        // Sharing the 100 Mbps ingress link, the pair needs ~200 ms.
        let secs = last.as_secs_f64();
        assert!(secs > 0.19 && secs < 0.22, "two shared flows took {secs}s");
    }

    #[test]
    fn maxmin_disjoint_flows_do_not_interact() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net
            .start_flow(&mut sched, HostId::new(0), HostId::new(1), size, 1);
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(3), size, 2);
        run_world(&mut w, &mut sched, None);
        let last = w.deliveries.iter().map(|&(t, _)| t).max().unwrap();
        let secs = last.as_secs_f64();
        assert!(
            secs < 0.105,
            "disjoint flows must proceed at full rate, took {secs}s"
        );
    }

    #[test]
    fn bottleneck_flows_never_interact_by_construction() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net
            .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        run_world(&mut w, &mut sched, None);
        let last = w.deliveries.iter().map(|&(t, _)| t).max().unwrap();
        assert_eq!(last, SimTime::from_micros(100_200));
    }

    #[test]
    fn message_delay_is_analytic_and_counts_in_stats() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let d = w
            .net
            .message_delay(HostId::new(0), HostId::new(1), DataSize::from_bytes(1250));
        // 1250 B over 100 Mbps = 100 us, plus 200 us latency.
        assert_eq!(d, SimDuration::from_micros(300));
        assert_eq!(w.net.stats().control_messages, 1);
        assert_eq!(
            w.net
                .message_delay(HostId::new(2), HostId::new(2), DataSize::from_bytes(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn link_byte_accounting_covers_the_route() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(1),
            DataSize::from_bytes(1000),
            0,
        );
        run_world(&mut w, &mut sched, None);
        let carried: u64 = w.net.stats().link_bytes.iter().sum();
        assert_eq!(carried, 2000, "the payload crosses two directed links");
    }

    #[test]
    fn loopback_flow_delivers_immediately() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(0),
            DataSize::from_bytes(1_000_000),
            9,
        );
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 1);
        assert_eq!(w.deliveries[0].0, SimTime::ZERO);
    }

    #[test]
    fn many_flows_all_complete() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        for i in 0..32u64 {
            let src = HostId::new((i % 4) as u32);
            let dst = HostId::new(((i + 1) % 4) as u32);
            w.net.start_flow(
                &mut sched,
                src,
                dst,
                DataSize::from_bytes(10_000 + i * 500),
                i,
            );
        }
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 32);
        assert_eq!(w.net.stats().flows_completed, 32);
        assert_eq!(w.net.flows_in_flight(), 0);
        let mut tokens: Vec<u64> = w.deliveries.iter().map(|(_, d)| d.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn slab_slots_are_recycled_with_fresh_generations() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let first = w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(1),
            DataSize::from_bytes(1000),
            0,
        );
        run_world(&mut w, &mut sched, None);
        let second = w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(1),
            DataSize::from_bytes(1000),
            1,
        );
        assert_eq!(first.slot(), second.slot(), "the slot must be recycled");
        assert_ne!(first.generation(), second.generation());
        assert_ne!(first, second, "recycled ids must not collide");
        assert!(w.net.flow_rate(first).is_none(), "the old id must be dead");
        assert!(w.net.flow_rate(second).is_some());
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
    }

    #[test]
    fn unaffected_flows_keep_their_completion_events() {
        // h0->h1 and h2->h3 are disjoint: starting the second flow must not
        // invalidate the first one's completion event.
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net
            .start_flow(&mut sched, HostId::new(0), HostId::new(1), size, 1);
        // Drain the activation + first schedule.
        while sched.pending() > 0 && w.net.stats().flows_completed == 0 {
            let dead_before = sched.dead_pending();
            let (_, ev) = sched.pop().unwrap();
            w.handle(&mut sched, ev);
            // Activating the disjoint second flow right after the first
            // rebalance must not mark the first flow's event dead.
            if w.net.flows_in_flight() == 1 && sched.dead_pending() == dead_before {
                break;
            }
        }
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(3), size, 2);
        let dead_before = sched.dead_pending();
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
        assert_eq!(
            sched.dead_pending(),
            dead_before,
            "disjoint flows must not invalidate each other's events"
        );
    }

    #[test]
    fn shared_bottleneck_marks_superseded_events_dead_and_compacts() {
        // The per-event scan engine rebalances on every activation, so the
        // second activation supersedes the first flow's completion event —
        // the mark-dead/compact machinery this test exercises.
        let mut w = dumbbell_with(SharingMode::MaxMinFair, RebalanceEngine::ScanPerEvent);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net
            .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        // Process the two activations: the second rebalance halves the first
        // flow's rate, so exactly its completion event goes stale.
        for _ in 0..2 {
            let (_, ev) = sched.pop().unwrap();
            w.handle(&mut sched, ev);
        }
        assert_eq!(sched.dead_pending(), 1, "one superseded completion");
        assert_eq!(sched.live_pending(), 2, "one live completion per flow");
        let removed = w.net.compact_events(&mut sched);
        assert_eq!(removed, 1);
        assert_eq!(sched.dead_pending(), 0);
        assert_eq!(sched.pending(), 2);
        run_world(&mut w, &mut sched, None);
        assert_eq!(
            w.deliveries.len(),
            2,
            "compaction must not lose live events"
        );
    }

    #[test]
    fn batched_engine_coalesces_same_timestamp_activations() {
        // Both activations land at the same instant (equal route latencies);
        // the batched engine folds them into one rebalance, so no completion
        // is ever superseded — where the scan engine marks one dead (see
        // `shared_bottleneck_marks_superseded_events_dead_and_compacts`).
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net
            .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        // Drain the activation instant: two activations plus the sentinel.
        let instant = sched.peek_time().unwrap();
        while sched.peek_time() == Some(instant) {
            let (_, ev) = sched.pop().unwrap();
            w.handle(&mut sched, ev);
        }
        assert_eq!(sched.dead_pending(), 0, "one batch, nothing superseded");
        assert_eq!(sched.live_pending(), 2, "one live completion per flow");
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
    }

    #[test]
    fn rates_track_the_fair_share_as_flows_come_and_go() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(12_500_000); // 1 s alone
        let a = w
            .net
            .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        let b = w
            .net
            .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        // Drain the whole activation instant (both activations plus the
        // batched rebalance): each flow should hold half the 12.5 MB/s.
        let instant = sched.peek_time().unwrap();
        while sched.peek_time() == Some(instant) {
            let (_, ev) = sched.pop().unwrap();
            w.handle(&mut sched, ev);
        }
        let half = 12.5e6 / 2.0;
        assert!((w.net.flow_rate(a).unwrap() - half).abs() < 1.0);
        assert!((w.net.flow_rate(b).unwrap() - half).abs() < 1.0);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
    }

    #[test]
    fn compaction_keeps_live_bottleneck_completions() {
        // Bottleneck-mode flows schedule their single completion without
        // using the pending/version machinery; a manual compaction pass must
        // treat those events as live (regression: an over-tight predicate
        // once dropped them, losing the deliveries).
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        for i in 0..4 {
            w.net.start_flow(
                &mut sched,
                HostId::new(i % 4),
                HostId::new((i + 1) % 4),
                size,
                u64::from(i),
            );
        }
        assert_eq!(w.net.compact_events(&mut sched), 0, "all events are live");
        assert_eq!(sched.pending(), 4);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 4);
    }

    #[test]
    fn auto_compaction_fires_once_the_policy_threshold_is_crossed() {
        // Per-event rebalances of staggered arrivals on one shared link keep
        // superseding the earlier flows' completions; with a tiny policy
        // threshold the network must compact on its own.
        let mut w = dumbbell_with(SharingMode::MaxMinFair, RebalanceEngine::ScanPerEvent);
        w.net.set_compaction_policy(CompactionPolicy {
            dead_per_live: 0,
            min_dead: 1,
        });
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(12_500_000);
        w.net
            .start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net
            .start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
        assert!(
            w.net.auto_compactions() > 0,
            "dead_per_live = 0 and min_dead = 1 must force a compaction"
        );
        assert_eq!(sched.dead_pending(), 0, "the run ends with a clean heap");
        assert!(sched.compacted_entries() >= w.net.auto_compactions());
        assert_eq!(sched.compactions(), w.net.auto_compactions());
    }

    #[test]
    fn serde_round_trip_mid_run_continues_bit_identically() {
        // Pause a congested run mid-flight via Network + Scheduler serde,
        // rebuild both from the encoded values, and drain the original and
        // the restored copy side by side: every remaining delivery must land
        // at the identical nanosecond, under every rebalance engine.
        for engine in [
            RebalanceEngine::ScanPerEvent,
            RebalanceEngine::BucketedBatched,
            RebalanceEngine::DirtyComponent,
            RebalanceEngine::ParallelShard,
            RebalanceEngine::WarmStart,
        ] {
            let mut w = dumbbell_with(SharingMode::MaxMinFair, engine);
            let mut sched: Scheduler<Ev> = Scheduler::new();
            for i in 0..10u64 {
                w.net.start_flow(
                    &mut sched,
                    HostId::new((i % 4) as u32),
                    HostId::new(((i + 2) % 4) as u32),
                    DataSize::from_bytes(400_000 + 150_000 * i),
                    i,
                );
            }
            run_world(&mut w, &mut sched, Some(SimTime::from_millis(40)));
            assert!(w.net.flows_in_flight() > 0, "cut must land mid-run");

            let net_v = w.net.to_value();
            let sched_v = sched.to_value();
            // Canonical encoding: re-encoding the restored state is identical.
            let restored_net = Network::from_value(&net_v).unwrap();
            assert_eq!(
                serde_json::to_string(&net_v).unwrap(),
                serde_json::to_string(&restored_net.to_value()).unwrap(),
                "{engine:?}"
            );
            let mut w2 = NetWorld {
                net: restored_net,
                deliveries: w.deliveries.clone(),
            };
            let mut sched2: Scheduler<Ev> = Scheduler::from_value(&sched_v).unwrap();

            run_world(&mut w, &mut sched, None);
            run_world(&mut w2, &mut sched2, None);
            assert_eq!(w.deliveries, w2.deliveries, "{engine:?}");
            assert_eq!(w.net.stats(), w2.net.stats(), "{engine:?}");
        }
    }

    #[test]
    fn serde_rejects_mismatched_flow_state() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched: Scheduler<Ev> = Scheduler::new();
        w.net.start_flow(
            &mut sched,
            HostId::new(0),
            HostId::new(1),
            DataSize::from_bytes(1_000_000),
            1,
        );
        let v = w.net.to_value();
        // Point the first live flow at a host outside the platform: the
        // restore must fail to re-derive its route, not panic.
        fn corrupt(v: &Value) -> Value {
            match v {
                Value::Object(fields) => Value::Object(
                    fields
                        .iter()
                        .map(|(k, inner)| {
                            if k == "dst" {
                                (k.clone(), Value::UInt(9_999))
                            } else {
                                (k.clone(), corrupt(inner))
                            }
                        })
                        .collect(),
                ),
                Value::Array(items) => Value::Array(items.iter().map(corrupt).collect()),
                other => other.clone(),
            }
        }
        let err = Network::from_value(&corrupt(&v)).unwrap_err();
        assert!(err.to_string().contains("route"), "got: {err}");
    }

    #[test]
    fn memory_footprint_tracks_the_flow_population() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let empty = w.net.memory_footprint();
        assert_eq!(empty.live_flows, 0);
        assert_eq!(empty.bytes_per_flow(0), 0.0);
        let size = DataSize::from_bytes(1_000_000);
        for i in 0..4u64 {
            w.net.start_flow(
                &mut sched,
                HostId::new((i % 4) as u32),
                HostId::new(((i + 1) % 4) as u32),
                size,
                i,
            );
        }
        let fp = w.net.memory_footprint();
        assert_eq!(fp.live_flows, 4);
        // Four live flows occupy slab slots (and, once active, incidence
        // entries), so the per-flow figure must be meaningful and the total
        // must include both components after the flows activate.
        run_world(&mut w, &mut sched, Some(SimTime::from_millis(1)));
        let active = w.net.memory_footprint();
        assert!(active.slab_bytes > 0);
        assert!(active.incidence_bytes > 0);
        // Checkpointed structures count too: the union–find partition always,
        // the warm-start records once the default engine has flushed.
        assert!(active.component_bytes > 0);
        assert!(active.warm_bytes > 0);
        assert_eq!(
            active.total_bytes(),
            active.slab_bytes + active.incidence_bytes + active.component_bytes + active.warm_bytes
        );
        assert!(active.bytes_per_flow(0) >= active.total_bytes() as f64 / 4.0 - 1.0);
        assert!(
            active.bytes_per_flow(sched.footprint_bytes()) > active.bytes_per_flow(0),
            "the scheduler extra must fold into the divisor's numerator"
        );
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.net.memory_footprint().live_flows, 0);
    }
}
