//! Flow-level communication model.
//!
//! A [`Network`] owns the [`Platform`] and the set of data transfers (flows)
//! currently in flight. Two sharing modes are provided:
//!
//! * [`SharingMode::Bottleneck`] — the analytic model SimGrid's MSG module
//!   uses by default for trace replay: a transfer of `size` bytes along a
//!   route takes `Σ latency + size / bottleneck_bandwidth`, independently of
//!   other traffic. Cheap and adequate when flows rarely overlap.
//! * [`SharingMode::MaxMinFair`] — concurrent flows crossing the same link
//!   share its capacity according to max–min fairness (progressive filling).
//!   Rates are recomputed whenever a flow starts or finishes. This is the
//!   model to use when many peers hammer a shared backbone (LAN Stage-2B) or
//!   a DSLAM uplink (xDSL Stage-2A).
//!
//! Control-plane messages of the P2PDC overlay are small and latency-bound;
//! [`Network::message_delay`] provides their delivery delay analytically
//! without materialising a flow.

use crate::event::Scheduler;
use crate::platform::{Platform, Route};
use p2p_common::{DataSize, FlowId, HostId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// How concurrent flows share link capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingMode {
    /// Independent flows, bottleneck-bandwidth analytic model.
    Bottleneck,
    /// Max–min fair sharing of every link's capacity.
    MaxMinFair,
}

/// Events the network schedules for itself. Embed this in the world's event
/// type via `From<NetEvent>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEvent {
    /// The flow's latency has elapsed; it now competes for bandwidth.
    FlowActivate { flow: FlowId },
    /// A flow may have finished draining (stale if `version` is outdated).
    FlowCompletion { flow: FlowId, version: u64 },
}

/// Notification that a flow has been fully delivered to its destination host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDelivery {
    /// The completed flow.
    pub flow: FlowId,
    /// Caller-supplied token identifying what this flow carried.
    pub token: u64,
    /// Source host.
    pub src: HostId,
    /// Destination host.
    pub dst: HostId,
    /// Payload size.
    pub size: DataSize,
}

/// Aggregate transfer statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Flows started.
    pub flows_started: u64,
    /// Flows delivered.
    pub flows_completed: u64,
    /// Total payload bytes delivered.
    pub bytes_delivered: u64,
    /// Control-plane messages routed through [`Network::message_delay`].
    pub control_messages: u64,
    /// Bytes carried per directed link (indexed like `Platform::links`).
    pub link_bytes: Vec<u64>,
}

#[derive(Debug, Clone)]
struct FlowState {
    id: FlowId,
    src: HostId,
    dst: HostId,
    token: u64,
    size: DataSize,
    route: Arc<Route>,
    /// Payload bytes still to drain (only meaningful once active).
    remaining: f64,
    /// Currently allocated rate in bytes/s (0 until activated).
    rate: f64,
    /// Last instant at which `remaining` was brought up to date.
    last_progress: SimTime,
    active: bool,
}

/// The flow-level network simulator state.
#[derive(Debug)]
pub struct Network {
    platform: Platform,
    mode: SharingMode,
    flows: HashMap<FlowId, FlowState>,
    next_flow: u64,
    /// Bumped whenever rates change; stale completion events are ignored.
    version: u64,
    stats: NetStats,
}

/// Residual byte threshold below which a flow counts as drained (absorbs
/// floating-point error accumulated across rate recomputations).
const DRAIN_EPSILON: f64 = 1e-3;

impl Network {
    /// Wrap a platform in a network simulator.
    pub fn new(platform: Platform, mode: SharingMode) -> Self {
        let link_count = platform.links().len();
        Network {
            platform,
            mode,
            flows: HashMap::new(),
            next_flow: 0,
            version: 0,
            stats: NetStats {
                link_bytes: vec![0; link_count],
                ..NetStats::default()
            },
        }
    }

    /// The underlying platform.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Mutable access to the platform (route cache lives there).
    pub fn platform_mut(&mut self) -> &mut Platform {
        &mut self.platform
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The configured sharing mode.
    pub fn mode(&self) -> SharingMode {
        self.mode
    }

    /// Number of flows currently in flight (activated or not).
    pub fn flows_in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Analytic one-way delivery delay of a small control message, without
    /// creating a flow: `Σ latency + size / bottleneck`.
    pub fn message_delay(&mut self, src: HostId, dst: HostId, size: DataSize) -> SimDuration {
        self.stats.control_messages += 1;
        if src == dst {
            return SimDuration::ZERO;
        }
        let route = self.platform.route(src, dst);
        route.analytic_transfer_time(size)
    }

    /// Start a bulk transfer of `size` bytes from `src` to `dst`. The caller
    /// receives back a [`FlowDelivery`] carrying `token` from
    /// [`Network::on_event`] when the transfer completes.
    pub fn start_flow<E: From<NetEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        src: HostId,
        dst: HostId,
        size: DataSize,
        token: u64,
    ) -> FlowId {
        let id = FlowId::new(self.next_flow);
        self.next_flow += 1;
        self.stats.flows_started += 1;
        let route = self.platform.route(src, dst);
        let now = sched.now();
        let state = FlowState {
            id,
            src,
            dst,
            token,
            size,
            route: Arc::clone(&route),
            remaining: size.bytes() as f64,
            rate: 0.0,
            last_progress: now,
            active: false,
        };
        self.flows.insert(id, state);
        match self.mode {
            SharingMode::Bottleneck => {
                // No interaction between flows: one event at the analytic time.
                let total = route.analytic_transfer_time(size);
                self.version += 1;
                sched.schedule_in(
                    total,
                    NetEvent::FlowCompletion {
                        flow: id,
                        version: self.version,
                    }
                    .into(),
                );
            }
            SharingMode::MaxMinFair => {
                // The flow starts competing for bandwidth after the route
                // latency (pipe-fill delay).
                sched.schedule_in(route.latency, NetEvent::FlowActivate { flow: id }.into());
            }
        }
        id
    }

    /// Feed a [`NetEvent`] back to the network. Returns the deliveries that
    /// became final at the current time.
    pub fn on_event<E: From<NetEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        event: NetEvent,
    ) -> Vec<FlowDelivery> {
        match (self.mode, event) {
            (SharingMode::Bottleneck, NetEvent::FlowCompletion { flow, .. }) => {
                match self.flows.remove(&flow) {
                    Some(state) => vec![self.finish_flow(state)],
                    None => vec![],
                }
            }
            (SharingMode::Bottleneck, NetEvent::FlowActivate { .. }) => vec![],
            (SharingMode::MaxMinFair, NetEvent::FlowActivate { flow }) => {
                let now = sched.now();
                self.progress_all(now);
                if let Some(f) = self.flows.get_mut(&flow) {
                    f.active = true;
                    f.last_progress = now;
                }
                self.rebalance(sched);
                vec![]
            }
            (SharingMode::MaxMinFair, NetEvent::FlowCompletion { flow: _, version }) => {
                if version != self.version {
                    return vec![]; // stale: rates changed since this was scheduled
                }
                let now = sched.now();
                self.progress_all(now);
                let done: Vec<FlowId> = self
                    .flows
                    .values()
                    .filter(|f| f.active && f.remaining <= DRAIN_EPSILON)
                    .map(|f| f.id)
                    .collect();
                let mut deliveries = Vec::with_capacity(done.len());
                for id in done {
                    let state = self.flows.remove(&id).expect("flow just observed");
                    deliveries.push(self.finish_flow(state));
                }
                if !deliveries.is_empty() {
                    self.rebalance(sched);
                }
                deliveries
            }
        }
    }

    fn finish_flow(&mut self, state: FlowState) -> FlowDelivery {
        self.stats.flows_completed += 1;
        self.stats.bytes_delivered += state.size.bytes();
        for &l in &state.route.links {
            self.stats.link_bytes[l] += state.size.bytes();
        }
        FlowDelivery {
            flow: state.id,
            token: state.token,
            src: state.src,
            dst: state.dst,
            size: state.size,
        }
    }

    /// Advance every active flow's `remaining` to `now` at its current rate.
    fn progress_all(&mut self, now: SimTime) {
        for f in self.flows.values_mut() {
            if !f.active {
                continue;
            }
            if f.route.links.is_empty() {
                // Loopback transfer: drained as soon as it is active.
                f.remaining = 0.0;
            }
            let dt = now.duration_since(f.last_progress).as_secs_f64();
            if dt > 0.0 && f.rate > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            f.last_progress = now;
        }
    }

    /// Recompute max–min fair rates and reschedule completion candidates.
    fn rebalance<E: From<NetEvent>>(&mut self, sched: &mut Scheduler<E>) {
        self.version += 1;
        self.compute_max_min_rates();
        let now = sched.now();
        for f in self.flows.values() {
            if !f.active {
                continue;
            }
            let eta = if f.remaining <= DRAIN_EPSILON {
                SimDuration::ZERO
            } else if f.rate <= 0.0 {
                continue; // starved; will be rescheduled on the next rebalance
            } else {
                SimDuration::from_secs_f64(f.remaining / f.rate)
            };
            sched.schedule_at(
                now + eta,
                NetEvent::FlowCompletion {
                    flow: f.id,
                    version: self.version,
                }
                .into(),
            );
        }
    }

    /// Progressive-filling max–min fairness over the active flows.
    fn compute_max_min_rates(&mut self) {
        // Collect link capacities (bytes/s) restricted to links in use.
        let mut capacity: HashMap<usize, f64> = HashMap::new();
        let mut flows_on_link: HashMap<usize, Vec<FlowId>> = HashMap::new();
        let mut unfixed: Vec<FlowId> = Vec::new();
        for f in self.flows.values_mut() {
            if !f.active {
                continue;
            }
            f.rate = 0.0;
            if f.route.links.is_empty() {
                // Loopback: effectively infinite rate.
                f.rate = f64::MAX / 4.0;
                continue;
            }
            unfixed.push(f.id);
            for &l in &f.route.links {
                capacity
                    .entry(l)
                    .or_insert_with(|| self.platform.links()[l].bandwidth.bytes_per_sec());
                flows_on_link.entry(l).or_default().push(f.id);
            }
        }
        let mut fixed: HashMap<FlowId, f64> = HashMap::new();
        while !unfixed.is_empty() {
            // Fair share on each link = remaining capacity / unfixed flows on it.
            let mut best: Option<(usize, f64)> = None;
            for (&l, flows) in &flows_on_link {
                let n_unfixed = flows.iter().filter(|f| !fixed.contains_key(f)).count();
                if n_unfixed == 0 {
                    continue;
                }
                let share = capacity[&l] / n_unfixed as f64;
                if best.map_or(true, |(_, s)| share < s) {
                    best = Some((l, share));
                }
            }
            let Some((bottleneck_link, share)) = best else {
                break;
            };
            let to_fix: Vec<FlowId> = flows_on_link[&bottleneck_link]
                .iter()
                .copied()
                .filter(|f| !fixed.contains_key(f))
                .collect();
            for fid in to_fix {
                fixed.insert(fid, share);
                // Reserve this flow's share on every link it crosses.
                let route = Arc::clone(&self.flows[&fid].route);
                for &l in &route.links {
                    if let Some(c) = capacity.get_mut(&l) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
            unfixed.retain(|f| !fixed.contains_key(f));
        }
        for (fid, rate) in fixed {
            if let Some(f) = self.flows.get_mut(&fid) {
                f.rate = rate;
            }
        }
    }

    /// Current rate (bytes/s) of a flow, for tests and diagnostics.
    pub fn flow_rate(&self, flow: FlowId) -> Option<f64> {
        self.flows.get(&flow).map(|f| f.rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{run_world, World};
    use crate::platform::{HostSpec, LinkSpec, PlatformBuilder};
    use p2p_common::Bandwidth;

    /// Minimal world recording flow deliveries.
    struct NetWorld {
        net: Network,
        deliveries: Vec<(SimTime, FlowDelivery)>,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        Net(NetEvent),
    }
    impl From<NetEvent> for Ev {
        fn from(e: NetEvent) -> Self {
            Ev::Net(e)
        }
    }
    impl World for NetWorld {
        type Event = Ev;
        fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
            let Ev::Net(ne) = ev;
            let now = sched.now();
            for d in self.net.on_event(sched, ne) {
                self.deliveries.push((now, d));
            }
        }
    }

    /// Two hosts joined through one switch: 100 Mbps access links, 100 us each.
    fn dumbbell(mode: SharingMode) -> NetWorld {
        let mut b = PlatformBuilder::new();
        let spec = LinkSpec::new(Bandwidth::from_mbps(100.0), SimDuration::from_micros(100));
        let sw = b.add_router("sw");
        for i in 0..4 {
            let h = b.add_host(format!("h{i}"), format!("10.0.0.{}", i + 1).parse().unwrap(), HostSpec::default());
            b.add_host_link(format!("l{i}"), h, sw, spec);
        }
        NetWorld {
            net: Network::new(b.build(), mode),
            deliveries: vec![],
        }
    }

    #[test]
    fn bottleneck_single_flow_timing_is_analytic() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        // 1.25 MB over 100 Mbps = 100 ms, plus 200 us of latency.
        w.net.start_flow(&mut sched, HostId::new(0), HostId::new(1), DataSize::from_bytes(1_250_000), 7);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 1);
        let (t, d) = w.deliveries[0];
        assert_eq!(t, SimTime::from_micros(100_200));
        assert_eq!(d.token, 7);
        assert_eq!(d.size, DataSize::from_bytes(1_250_000));
        assert_eq!(w.net.stats().flows_completed, 1);
        assert_eq!(w.net.stats().bytes_delivered, 1_250_000);
    }

    #[test]
    fn maxmin_single_flow_matches_bottleneck() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        w.net.start_flow(&mut sched, HostId::new(0), HostId::new(1), DataSize::from_bytes(1_250_000), 0);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 1);
        let (t, _) = w.deliveries[0];
        // Pipe-fill model: latency (200us) then drain at 100 Mbps (100ms).
        let expected = SimTime::from_micros(100_200);
        let err = (t.as_secs_f64() - expected.as_secs_f64()).abs();
        assert!(err < 1e-6, "got {t}, expected about {expected}");
    }

    #[test]
    fn maxmin_two_flows_share_a_common_link() {
        // Both flows have h0 as destination, so they share h0's access link.
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000); // 100 ms alone
        w.net.start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net.start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 2);
        let last = w.deliveries.iter().map(|&(t, _)| t).max().unwrap();
        // Sharing the 100 Mbps ingress link, the pair needs ~200 ms.
        let secs = last.as_secs_f64();
        assert!(secs > 0.19 && secs < 0.22, "two shared flows took {secs}s");
    }

    #[test]
    fn maxmin_disjoint_flows_do_not_interact() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net.start_flow(&mut sched, HostId::new(0), HostId::new(1), size, 1);
        w.net.start_flow(&mut sched, HostId::new(2), HostId::new(3), size, 2);
        run_world(&mut w, &mut sched, None);
        let last = w.deliveries.iter().map(|&(t, _)| t).max().unwrap();
        let secs = last.as_secs_f64();
        assert!(secs < 0.105, "disjoint flows must proceed at full rate, took {secs}s");
    }

    #[test]
    fn bottleneck_flows_never_interact_by_construction() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        let size = DataSize::from_bytes(1_250_000);
        w.net.start_flow(&mut sched, HostId::new(1), HostId::new(0), size, 1);
        w.net.start_flow(&mut sched, HostId::new(2), HostId::new(0), size, 2);
        run_world(&mut w, &mut sched, None);
        let last = w.deliveries.iter().map(|&(t, _)| t).max().unwrap();
        assert_eq!(last, SimTime::from_micros(100_200));
    }

    #[test]
    fn message_delay_is_analytic_and_counts_in_stats() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let d = w
            .net
            .message_delay(HostId::new(0), HostId::new(1), DataSize::from_bytes(1250));
        // 1250 B over 100 Mbps = 100 us, plus 200 us latency.
        assert_eq!(d, SimDuration::from_micros(300));
        assert_eq!(w.net.stats().control_messages, 1);
        assert_eq!(
            w.net.message_delay(HostId::new(2), HostId::new(2), DataSize::from_bytes(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn link_byte_accounting_covers_the_route() {
        let mut w = dumbbell(SharingMode::Bottleneck);
        let mut sched = Scheduler::new();
        w.net.start_flow(&mut sched, HostId::new(0), HostId::new(1), DataSize::from_bytes(1000), 0);
        run_world(&mut w, &mut sched, None);
        let carried: u64 = w.net.stats().link_bytes.iter().sum();
        assert_eq!(carried, 2000, "the payload crosses two directed links");
    }

    #[test]
    fn loopback_flow_delivers_immediately() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        w.net.start_flow(&mut sched, HostId::new(0), HostId::new(0), DataSize::from_bytes(1_000_000), 9);
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 1);
        assert_eq!(w.deliveries[0].0, SimTime::ZERO);
    }

    #[test]
    fn many_flows_all_complete() {
        let mut w = dumbbell(SharingMode::MaxMinFair);
        let mut sched = Scheduler::new();
        for i in 0..32u64 {
            let src = HostId::new((i % 4) as u32);
            let dst = HostId::new(((i + 1) % 4) as u32);
            w.net.start_flow(&mut sched, src, dst, DataSize::from_bytes(10_000 + i * 500), i);
        }
        run_world(&mut w, &mut sched, None);
        assert_eq!(w.deliveries.len(), 32);
        assert_eq!(w.net.stats().flows_completed, 32);
        assert_eq!(w.net.flows_in_flight(), 0);
        let mut tokens: Vec<u64> = w.deliveries.iter().map(|(_, d)| d.token).collect();
        tokens.sort_unstable();
        assert_eq!(tokens, (0..32).collect::<Vec<_>>());
    }
}
