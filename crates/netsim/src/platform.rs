//! Platform description: hosts, routers, links and routing.
//!
//! This mirrors the role of a SimGrid *platform file* (paper §III-D.2: "the
//! trace files obtained earlier are given at input to Simgrid, but not before
//! configuring the distributed network to be simulated"). A platform is a
//! directed graph whose nodes are compute hosts, routers, switches or DSLAMs,
//! and whose edges are directed link halves (every physical full-duplex link
//! contributes one edge per direction, each with its own capacity).
//!
//! Routes between hosts are computed on demand with Dijkstra's algorithm
//! (minimising latency, then hop count) and cached.

use p2p_common::{Bandwidth, DataSize, HostId, IpAddr, NodeId, SimDuration};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// What kind of equipment a platform node models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host that can run processes (has a compute speed).
    Host,
    /// A router, switch or DSLAM: forwards traffic, runs nothing.
    Router,
}

/// One node of the platform graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Graph-wide identifier.
    pub id: NodeId,
    /// Equipment kind.
    pub kind: NodeKind,
    /// Human-readable name (unique within the platform).
    pub name: String,
    /// IP address (hosts always have one; routers may).
    pub ip: Option<IpAddr>,
    /// Compute speed in flop/s (zero for routers).
    pub speed_flops: f64,
}

/// Compute characteristics of a host, used by the topology builders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Effective flop rate of the host.
    pub speed_flops: f64,
}

impl HostSpec {
    /// The Bordeplage node model: Intel Xeon EM64T 3 GHz. The effective flop
    /// rate is calibrated for the memory-bound obstacle kernel at `-O3`
    /// (see `dperf::machine::MachineModel::xeon_em64t_3ghz`).
    pub fn xeon_em64t_3ghz() -> Self {
        HostSpec { speed_flops: 1.0e9 }
    }
}

impl Default for HostSpec {
    fn default() -> Self {
        HostSpec::xeon_em64t_3ghz()
    }
}

/// Characteristics of one physical link (applied to both directions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Capacity of each direction.
    pub bandwidth: Bandwidth,
    /// One-way propagation + forwarding latency.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Convenience constructor.
    pub fn new(bandwidth: Bandwidth, latency: SimDuration) -> Self {
        LinkSpec { bandwidth, latency }
    }
}

/// One *directed* link half. Index into [`Platform::links`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Name of the physical link this half belongs to.
    pub name: String,
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Capacity of this direction.
    pub bandwidth: Bandwidth,
    /// One-way latency of this direction.
    pub latency: SimDuration,
}

/// A routed path between two hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Directed link indices, in traversal order.
    pub links: Vec<usize>,
    /// Sum of the per-link latencies.
    pub latency: SimDuration,
    /// Minimum bandwidth along the path (the bottleneck).
    pub bottleneck: Bandwidth,
}

impl Route {
    /// Transfer time of `size` under the analytic bottleneck model:
    /// `Σ latency + size / bottleneck`.
    pub fn analytic_transfer_time(&self, size: DataSize) -> SimDuration {
        self.latency + self.bottleneck.transfer_time(size)
    }
}

/// A complete platform: graph + host table + route cache.
#[derive(Debug, Clone)]
pub struct Platform {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency: for each node, outgoing (link index, head node).
    adj: Vec<Vec<(usize, NodeId)>>,
    /// Host table: `HostId(i)` is `hosts[i]`.
    hosts: Vec<NodeId>,
    node_of_name: HashMap<String, NodeId>,
    route_cache: HashMap<(HostId, HostId), Arc<Route>>,
}

impl Platform {
    /// All nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All directed link halves.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of compute hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// All host ids, in creation order.
    pub fn host_ids(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.hosts.len() as u32).map(HostId::new)
    }

    /// The graph node backing a host.
    pub fn node_of_host(&self, h: HostId) -> NodeId {
        self.hosts[h.index()]
    }

    /// The host record.
    pub fn host(&self, h: HostId) -> &Node {
        &self.nodes[self.node_of_host(h).index()]
    }

    /// Look a node up by name.
    pub fn node_by_name(&self, name: &str) -> Option<&Node> {
        self.node_of_name
            .get(name)
            .map(|id| &self.nodes[id.index()])
    }

    /// Look a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        let node = self.node_of_name.get(name)?;
        self.hosts
            .iter()
            .position(|&n| n == *node)
            .map(|i| HostId::new(i as u32))
    }

    /// Compute (or fetch from cache) the route between two hosts. Panics if
    /// the hosts are disconnected — a platform is expected to be connected.
    pub fn route(&mut self, from: HostId, to: HostId) -> Arc<Route> {
        if let Some(r) = self.route_cache.get(&(from, to)) {
            return Arc::clone(r);
        }
        let route = Arc::new(self.dijkstra(from, to).unwrap_or_else(|| {
            panic!(
                "no route between {} and {}",
                self.host(from).name,
                self.host(to).name
            )
        }));
        self.route_cache.insert((from, to), Arc::clone(&route));
        route
    }

    /// Route lookup without caching (for read-only contexts).
    pub fn route_uncached(&self, from: HostId, to: HostId) -> Option<Route> {
        self.dijkstra(from, to)
    }

    fn dijkstra(&self, from: HostId, to: HostId) -> Option<Route> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let src = self.node_of_host(from);
        let dst = self.node_of_host(to);
        if src == dst {
            return Some(Route {
                links: vec![],
                latency: SimDuration::ZERO,
                bottleneck: Bandwidth::from_gbps(f64::MAX / 1e9),
            });
        }
        let n = self.nodes.len();
        // Cost = (total latency ns, hop count).
        let mut dist: Vec<(u64, u32)> = vec![(u64::MAX, u32::MAX); n];
        let mut prev: Vec<Option<usize>> = vec![None; n]; // link used to reach node
        let mut heap = BinaryHeap::new();
        dist[src.index()] = (0, 0);
        heap.push(Reverse(((0u64, 0u32), src)));
        while let Some(Reverse((cost, node))) = heap.pop() {
            if cost > dist[node.index()] {
                continue;
            }
            if node == dst {
                break;
            }
            for &(link_idx, next) in &self.adj[node.index()] {
                let link = &self.links[link_idx];
                let cand = (cost.0.saturating_add(link.latency.as_nanos()), cost.1 + 1);
                if cand < dist[next.index()] {
                    dist[next.index()] = cand;
                    prev[next.index()] = Some(link_idx);
                    heap.push(Reverse((cand, next)));
                }
            }
        }
        if dist[dst.index()].0 == u64::MAX {
            return None;
        }
        // Reconstruct the link sequence.
        let mut links_rev = Vec::new();
        let mut cur = dst;
        while cur != src {
            let link_idx = prev[cur.index()]?;
            links_rev.push(link_idx);
            cur = self.links[link_idx].from;
        }
        links_rev.reverse();
        let latency = links_rev
            .iter()
            .fold(SimDuration::ZERO, |acc, &i| acc + self.links[i].latency);
        let bottleneck = links_rev
            .iter()
            .map(|&i| self.links[i].bandwidth)
            .fold(Bandwidth::from_gbps(f64::MAX / 1e9), Bandwidth::min);
        Some(Route {
            links: links_rev,
            latency,
            bottleneck,
        })
    }
}

/// Serialization captures only the graph (nodes, links, host table). The
/// adjacency index, the name table and the route cache are derived data:
/// they are rebuilt on restore, and `route_cache` restarts empty — routes
/// are recomputed on demand by the same deterministic Dijkstra (latency,
/// then hop count), so a restored simulation sees identical paths.
impl Serialize for Platform {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("nodes".to_owned(), self.nodes.to_value()),
            ("links".to_owned(), self.links.to_value()),
            ("hosts".to_owned(), self.hosts.to_value()),
        ])
    }
}

impl Deserialize for Platform {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "Platform", v))?;
        let nodes: Vec<Node> = serde::field(fields, "nodes", "Platform")?;
        let links: Vec<Link> = serde::field(fields, "links", "Platform")?;
        let hosts: Vec<NodeId> = serde::field(fields, "hosts", "Platform")?;
        for link in &links {
            if link.from.index() >= nodes.len() || link.to.index() >= nodes.len() {
                return Err(DeError::msg(format!(
                    "Platform: link `{}` references a node outside the graph",
                    link.name
                )));
            }
        }
        if hosts.iter().any(|h| h.index() >= nodes.len()) {
            return Err(DeError::msg(
                "Platform: host table references a node outside the graph",
            ));
        }
        let mut adj = vec![Vec::new(); nodes.len()];
        for (i, link) in links.iter().enumerate() {
            adj[link.from.index()].push((i, link.to));
        }
        let node_of_name = nodes.iter().map(|n| (n.name.clone(), n.id)).collect();
        Ok(Platform {
            nodes,
            links,
            adj,
            hosts,
            node_of_name,
            route_cache: HashMap::new(),
        })
    }
}

/// Incrementally builds a [`Platform`].
#[derive(Debug, Default)]
pub struct PlatformBuilder {
    nodes: Vec<Node>,
    links: Vec<Link>,
    hosts: Vec<NodeId>,
}

impl PlatformBuilder {
    /// Start an empty platform.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a compute host and return its [`HostId`].
    pub fn add_host(&mut self, name: impl Into<String>, ip: IpAddr, spec: HostSpec) -> HostId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind: NodeKind::Host,
            name: name.into(),
            ip: Some(ip),
            speed_flops: spec.speed_flops,
        });
        self.hosts.push(id);
        HostId::new((self.hosts.len() - 1) as u32)
    }

    /// Add a router / switch / DSLAM and return its [`NodeId`].
    pub fn add_router(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(Node {
            id,
            kind: NodeKind::Router,
            name: name.into(),
            ip: None,
            speed_flops: 0.0,
        });
        id
    }

    /// The graph node behind a host id (needed to link hosts to routers).
    pub fn node_of_host(&self, h: HostId) -> NodeId {
        self.hosts[h.index()]
    }

    /// Connect two nodes with a full-duplex link; both directions get the
    /// same spec. Returns the indices of the two directed halves.
    pub fn add_link(
        &mut self,
        name: impl Into<String>,
        a: NodeId,
        b: NodeId,
        spec: LinkSpec,
    ) -> (usize, usize) {
        assert!(a != b, "self-links are not allowed");
        let name = name.into();
        let fwd = self.links.len();
        self.links.push(Link {
            name: format!("{name}:fwd"),
            from: a,
            to: b,
            bandwidth: spec.bandwidth,
            latency: spec.latency,
        });
        let rev = self.links.len();
        self.links.push(Link {
            name: format!("{name}:rev"),
            from: b,
            to: a,
            bandwidth: spec.bandwidth,
            latency: spec.latency,
        });
        (fwd, rev)
    }

    /// Convenience: connect a host to a router.
    pub fn add_host_link(
        &mut self,
        name: impl Into<String>,
        host: HostId,
        router: NodeId,
        spec: LinkSpec,
    ) -> (usize, usize) {
        let hnode = self.node_of_host(host);
        self.add_link(name, hnode, router, spec)
    }

    /// Finish building.
    pub fn build(self) -> Platform {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        for (i, link) in self.links.iter().enumerate() {
            adj[link.from.index()].push((i, link.to));
        }
        let node_of_name = self.nodes.iter().map(|n| (n.name.clone(), n.id)).collect();
        Platform {
            nodes: self.nodes,
            links: self.links,
            adj,
            hosts: self.hosts,
            node_of_name,
            route_cache: HashMap::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_platform() -> Platform {
        // h0 -- sw -- h1, plus a slower detour h0 -- r -- h1.
        let mut b = PlatformBuilder::new();
        let h0 = b.add_host("h0", "10.0.0.1".parse().unwrap(), HostSpec::default());
        let h1 = b.add_host("h1", "10.0.0.2".parse().unwrap(), HostSpec::default());
        let sw = b.add_router("sw");
        let detour = b.add_router("detour");
        let fast = LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::from_micros(100));
        let slow = LinkSpec::new(Bandwidth::from_mbps(10.0), SimDuration::from_millis(10));
        b.add_host_link("l0", h0, sw, fast);
        b.add_host_link("l1", h1, sw, fast);
        b.add_host_link("d0", h0, detour, slow);
        b.add_host_link("d1", h1, detour, slow);
        b.build()
    }

    #[test]
    fn builder_counts_nodes_hosts_links() {
        let p = small_platform();
        assert_eq!(p.nodes().len(), 4);
        assert_eq!(p.host_count(), 2);
        assert_eq!(p.links().len(), 8, "4 physical links = 8 directed halves");
        assert!(p.node_by_name("sw").is_some());
        assert_eq!(p.host_by_name("h1"), Some(HostId::new(1)));
        assert_eq!(p.host_by_name("missing"), None);
    }

    #[test]
    fn route_picks_the_low_latency_path() {
        let mut p = small_platform();
        let r = p.route(HostId::new(0), HostId::new(1));
        assert_eq!(r.links.len(), 2, "via the switch, not the detour");
        assert_eq!(r.latency, SimDuration::from_micros(200));
        assert_eq!(r.bottleneck, Bandwidth::from_gbps(1.0));
    }

    #[test]
    fn route_is_cached_and_symmetric_in_shape() {
        let mut p = small_platform();
        let a = p.route(HostId::new(0), HostId::new(1));
        let b = p.route(HostId::new(0), HostId::new(1));
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let back = p.route(HostId::new(1), HostId::new(0));
        assert_eq!(back.links.len(), a.links.len());
        assert_eq!(back.latency, a.latency);
    }

    #[test]
    fn self_route_is_empty_and_instant() {
        let mut p = small_platform();
        let r = p.route(HostId::new(0), HostId::new(0));
        assert!(r.links.is_empty());
        assert_eq!(r.latency, SimDuration::ZERO);
    }

    #[test]
    fn analytic_transfer_time_adds_latency_and_serialisation() {
        let mut p = small_platform();
        let r = p.route(HostId::new(0), HostId::new(1));
        // 125 KB over 1 Gbps = 1 ms, plus 200 us of latency.
        let t = r.analytic_transfer_time(DataSize::from_bytes(125_000));
        assert_eq!(t, SimDuration::from_micros(1200));
    }

    #[test]
    fn disconnected_hosts_have_no_route() {
        let mut b = PlatformBuilder::new();
        let _h0 = b.add_host("a", "10.0.0.1".parse().unwrap(), HostSpec::default());
        let _h1 = b.add_host("b", "10.0.0.2".parse().unwrap(), HostSpec::default());
        let p = b.build();
        assert!(p.route_uncached(HostId::new(0), HostId::new(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "self-links")]
    fn self_links_are_rejected() {
        let mut b = PlatformBuilder::new();
        let r = b.add_router("r");
        b.add_link(
            "loop",
            r,
            r,
            LinkSpec::new(Bandwidth::from_gbps(1.0), SimDuration::ZERO),
        );
    }

    #[test]
    fn serde_round_trip_rebuilds_derived_state() {
        let mut p = small_platform();
        let _ = p.route(HostId::new(0), HostId::new(1)); // warm the cache
        let mut q = Platform::from_value(&p.to_value()).unwrap();
        assert_eq!(q.nodes().len(), p.nodes().len());
        assert_eq!(q.links().len(), p.links().len());
        assert_eq!(
            q.host_by_name("h1"),
            Some(HostId::new(1)),
            "name table rebuilt"
        );
        let a = p.route(HostId::new(0), HostId::new(1));
        let b = q.route(HostId::new(0), HostId::new(1));
        assert_eq!(a.links, b.links, "restored Dijkstra picks the same path");
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.bottleneck, b.bottleneck);
    }

    #[test]
    fn serde_rejects_links_outside_the_graph() {
        let p = small_platform();
        let v = p.to_value();
        let tampered = match &v {
            Value::Object(fields) => Value::Object(
                fields
                    .iter()
                    .map(|(k, val)| {
                        if k == "nodes" {
                            // Drop the last node: links now dangle.
                            match val {
                                Value::Array(items) => {
                                    (k.clone(), Value::Array(items[..items.len() - 1].to_vec()))
                                }
                                _ => unreachable!(),
                            }
                        } else {
                            (k.clone(), val.clone())
                        }
                    })
                    .collect(),
            ),
            _ => unreachable!(),
        };
        assert!(Platform::from_value(&tampered).is_err());
    }

    #[test]
    fn hosts_expose_their_spec() {
        let p = small_platform();
        let h = p.host(HostId::new(0));
        assert_eq!(h.kind, NodeKind::Host);
        assert_eq!(h.speed_flops, HostSpec::xeon_em64t_3ghz().speed_flops);
        assert_eq!(h.ip.unwrap().to_string(), "10.0.0.1");
    }
}
