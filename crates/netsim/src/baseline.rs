//! The seed's from-scratch max–min flow engine, retained verbatim (modulo
//! naming) as a differential baseline.
//!
//! [`BaselineNetwork`] is the algorithm `network.rs` shipped with before the
//! incremental refactor: a `HashMap` flow table, per-rebalance `HashMap`
//! allocations inside the progressive-filling loop, a *global* version
//! counter that invalidates every scheduled completion on every rebalance,
//! and an O(F) `progress_all` sweep per event.
//!
//! It exists for two reasons:
//!
//! * the property tests assert that the incremental engine produces
//!   **identical simulated results** (delivery timestamps, counts, stats) on
//!   randomised workloads — the refactor's correctness contract;
//! * `crates/bench/benches/perf_flow_engine.rs` measures the incremental
//!   engine's speedup against it (the recorded baseline lives in
//!   `BENCH_flow_engine.json`).
//!
//! Do not use it for anything else — it is deliberately the slow path.

use crate::event::Scheduler;
use crate::network::drain_eta;
use crate::network::{FlowDelivery, NetEvent, NetStats, SharingMode};
use crate::platform::{Platform, Route};
use p2p_common::{DataSize, FlowId, HostId, SimDuration, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct FlowState {
    id: FlowId,
    src: HostId,
    dst: HostId,
    token: u64,
    size: DataSize,
    route: Arc<Route>,
    remaining: f64,
    rate: f64,
    last_progress: SimTime,
    active: bool,
}

/// The seed's flow-level network simulator (see the module docs).
#[derive(Debug)]
pub struct BaselineNetwork {
    platform: Platform,
    mode: SharingMode,
    flows: HashMap<FlowId, FlowState>,
    next_flow: u64,
    /// Bumped whenever rates change; stale completion events are ignored.
    version: u64,
    stats: NetStats,
}

const DRAIN_EPSILON: f64 = 1e-3;

impl BaselineNetwork {
    /// Wrap a platform in the baseline simulator.
    pub fn new(platform: Platform, mode: SharingMode) -> Self {
        let link_count = platform.links().len();
        BaselineNetwork {
            platform,
            mode,
            flows: HashMap::new(),
            next_flow: 0,
            version: 0,
            stats: NetStats {
                link_bytes: vec![0; link_count],
                ..NetStats::default()
            },
        }
    }

    /// Transfer statistics so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Number of flows currently in flight.
    pub fn flows_in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Start a bulk transfer (seed semantics, including the needless version
    /// bump per Bottleneck flow the satellite fix removed from the real
    /// engine).
    pub fn start_flow<E: From<NetEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        src: HostId,
        dst: HostId,
        size: DataSize,
        token: u64,
    ) -> FlowId {
        let id = FlowId::new(self.next_flow);
        self.next_flow += 1;
        self.stats.flows_started += 1;
        let route = self.platform.route(src, dst);
        let now = sched.now();
        let state = FlowState {
            id,
            src,
            dst,
            token,
            size,
            route: Arc::clone(&route),
            remaining: size.bytes() as f64,
            rate: 0.0,
            last_progress: now,
            active: false,
        };
        self.flows.insert(id, state);
        match self.mode {
            SharingMode::Bottleneck => {
                let total = route.analytic_transfer_time(size);
                self.version += 1;
                sched.schedule_in(
                    total,
                    NetEvent::FlowCompletion {
                        flow: id,
                        version: self.version,
                    }
                    .into(),
                );
            }
            SharingMode::MaxMinFair => {
                sched.schedule_in(route.latency, NetEvent::FlowActivate { flow: id }.into());
            }
        }
        id
    }

    /// Feed a [`NetEvent`] back (seed semantics).
    pub fn on_event<E: From<NetEvent>>(
        &mut self,
        sched: &mut Scheduler<E>,
        event: NetEvent,
    ) -> Vec<FlowDelivery> {
        match (self.mode, event) {
            (SharingMode::Bottleneck, NetEvent::FlowCompletion { flow, .. }) => {
                match self.flows.remove(&flow) {
                    Some(state) => vec![self.finish_flow(state)],
                    None => vec![],
                }
            }
            (SharingMode::Bottleneck, NetEvent::FlowActivate { .. }) => vec![],
            // The seed engine rebalances inline; it never schedules (nor
            // reacts to) the incremental engine's batching sentinel.
            (_, NetEvent::Rebalance) => vec![],
            (SharingMode::MaxMinFair, NetEvent::FlowActivate { flow }) => {
                let now = sched.now();
                self.progress_all(now);
                if let Some(f) = self.flows.get_mut(&flow) {
                    f.active = true;
                    f.last_progress = now;
                }
                self.rebalance(sched);
                vec![]
            }
            (SharingMode::MaxMinFair, NetEvent::FlowCompletion { flow: _, version }) => {
                if version != self.version {
                    return vec![]; // stale: rates changed since this was scheduled
                }
                let now = sched.now();
                self.progress_all(now);
                let mut done: Vec<FlowId> = self
                    .flows
                    .values()
                    .filter(|f| f.active && f.remaining <= DRAIN_EPSILON)
                    .map(|f| f.id)
                    .collect();
                // The seed iterated a HashMap here, which made the delivery
                // order of simultaneous completions depend on the hash seed;
                // sort so differential tests compare a canonical order.
                done.sort_unstable();
                let mut deliveries = Vec::with_capacity(done.len());
                for id in done {
                    let state = self.flows.remove(&id).expect("flow just observed");
                    deliveries.push(self.finish_flow(state));
                }
                if !deliveries.is_empty() {
                    self.rebalance(sched);
                }
                deliveries
            }
        }
    }

    fn finish_flow(&mut self, state: FlowState) -> FlowDelivery {
        self.stats.flows_completed += 1;
        self.stats.bytes_delivered += state.size.bytes();
        for &l in &state.route.links {
            self.stats.link_bytes[l] += state.size.bytes();
        }
        FlowDelivery {
            flow: state.id,
            token: state.token,
            src: state.src,
            dst: state.dst,
            size: state.size,
        }
    }

    fn progress_all(&mut self, now: SimTime) {
        for f in self.flows.values_mut() {
            if !f.active {
                continue;
            }
            if f.route.links.is_empty() {
                f.remaining = 0.0;
            }
            let dt = now.duration_since(f.last_progress).as_secs_f64();
            if dt > 0.0 && f.rate > 0.0 {
                f.remaining = (f.remaining - f.rate * dt).max(0.0);
            }
            f.last_progress = now;
        }
    }

    /// Recompute rates from scratch and reschedule *every* active flow.
    fn rebalance<E: From<NetEvent>>(&mut self, sched: &mut Scheduler<E>) {
        self.version += 1;
        self.compute_max_min_rates();
        let now = sched.now();
        for f in self.flows.values() {
            if !f.active {
                continue;
            }
            // Same ceil-to-nanosecond ETA as the incremental engine (see
            // `drain_eta`): with round-to-nearest the seed could leave a
            // sub-resolution residual and strand the flow until the next
            // rebalance — a timing artefact, not part of the algorithm under
            // comparison.
            let eta = if f.remaining <= DRAIN_EPSILON {
                SimDuration::ZERO
            } else if f.rate <= 0.0 {
                continue;
            } else {
                drain_eta(f.remaining, f.rate)
            };
            sched.schedule_at(
                now + eta,
                NetEvent::FlowCompletion {
                    flow: f.id,
                    version: self.version,
                }
                .into(),
            );
        }
    }

    /// Progressive filling over freshly allocated hash maps (the seed's
    /// exact algorithm).
    fn compute_max_min_rates(&mut self) {
        let mut capacity: HashMap<usize, f64> = HashMap::new();
        let mut flows_on_link: HashMap<usize, Vec<FlowId>> = HashMap::new();
        let mut unfixed: Vec<FlowId> = Vec::new();
        for f in self.flows.values_mut() {
            if !f.active {
                continue;
            }
            f.rate = 0.0;
            if f.route.links.is_empty() {
                f.rate = f64::MAX / 4.0;
                continue;
            }
            unfixed.push(f.id);
            for &l in &f.route.links {
                capacity
                    .entry(l)
                    .or_insert_with(|| self.platform.links()[l].bandwidth.bytes_per_sec());
                flows_on_link.entry(l).or_default().push(f.id);
            }
        }
        let mut fixed: HashMap<FlowId, f64> = HashMap::new();
        while !unfixed.is_empty() {
            let mut best: Option<(usize, f64)> = None;
            for (&l, flows) in &flows_on_link {
                let n_unfixed = flows.iter().filter(|f| !fixed.contains_key(f)).count();
                if n_unfixed == 0 {
                    continue;
                }
                let share = capacity[&l] / n_unfixed as f64;
                if best.is_none_or(|(_, s)| share < s) {
                    best = Some((l, share));
                }
            }
            let Some((bottleneck_link, share)) = best else {
                break;
            };
            let to_fix: Vec<FlowId> = flows_on_link[&bottleneck_link]
                .iter()
                .copied()
                .filter(|f| !fixed.contains_key(f))
                .collect();
            for fid in to_fix {
                fixed.insert(fid, share);
                let route = Arc::clone(&self.flows[&fid].route);
                for &l in &route.links {
                    if let Some(c) = capacity.get_mut(&l) {
                        *c = (*c - share).max(0.0);
                    }
                }
            }
            unfixed.retain(|f| !fixed.contains_key(f));
        }
        for (fid, rate) in fixed {
            if let Some(f) = self.flows.get_mut(&fid) {
                f.rate = rate;
            }
        }
    }
}
