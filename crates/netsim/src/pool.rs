//! The persistent worker pool and its unified configuration.
//!
//! Until PR 10, the threading knobs of the parallel engines were scattered:
//! `Network::set_shard_threads`, `Network::set_parallel_threshold`,
//! `ReplayConfig::{engine, shard_threads, parallel_threshold}`, the
//! `RAYON_NUM_THREADS` environment variable and the `simd` service flags all
//! steered overlapping state, and every parallel flush paid a
//! thread-spawn + scratch-allocation floor through the rayon shim's scoped
//! fork–join. This module replaces both halves:
//!
//! * [`EngineConfig`] is the single validated description of how a
//!   [`Network`](crate::Network) rebalances: which
//!   [`RebalanceEngine`] runs, how many pool workers
//!   it may use, above how many covered flows a flush shards, and above how
//!   many flows on the bottleneck link a single component's fill is split
//!   across workers. It travels through `ReplayConfig`, `StreamSession`,
//!   the checkpoint envelope (format version 2) and the `simd` service.
//! * `WorkerPool` (crate-internal) owns the persistent workers — OS
//!   threads parked on a condvar and woken per flush — plus the dispatch
//!   statistics surfaced via [`FlushStats`](crate::FlushStats). Worker
//!   scratch (epoch-stamped
//!   capacity tables, fair-share queues, rate buffers) lives in the network
//!   beside it and is reused across flushes.
//!
//! Determinism note: the pool changes **where** fill work runs, never what
//! it computes. Simulated results are bit-identical at every worker budget
//! (see `tests/parallel.rs` and the five-way differential in
//! `tests/props.rs`); of the pool statistics only `park_wakeups` is
//! scheduling-dependent.

use serde::{Deserialize, Serialize};
use std::num::NonZeroUsize;
use std::sync::OnceLock;

use crate::network::RebalanceEngine;

/// Default for [`EngineConfig::parallel_threshold`]: sharding a flush has a
/// fixed dispatch cost, so flushes covering fewer flows than this run
/// serially even under a parallel engine.
pub const DEFAULT_PARALLEL_THRESHOLD: usize = 192;

/// Default resolution of [`EngineConfig::split_min_flows`]` == 0`: a
/// component's progressive fill is split across workers only while its
/// bottleneck link carries at least this many unfixed flows.
pub const DEFAULT_SPLIT_MIN_FLOWS: usize = 2048;

/// Hard cap on [`EngineConfig::workers`] accepted by
/// [`EngineConfig::validate`] — far above any sane budget, it exists to
/// reject garbage (e.g. a corrupted checkpoint) before it sizes allocations.
pub const MAX_WORKERS: usize = 1024;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse::<usize>().ok()
}

/// `NETSIM_WORKERS` if set to a positive integer, else the process-wide
/// rayon worker count. Resolved once and cached, like a real global pool.
fn auto_workers() -> usize {
    static WORKERS: OnceLock<usize> = OnceLock::new();
    *WORKERS.get_or_init(|| match env_usize("NETSIM_WORKERS") {
        Some(n) if n > 0 => n,
        _ => rayon::current_num_threads(),
    })
}

/// `NETSIM_SPLIT_MIN` if set to a positive integer, else
/// [`DEFAULT_SPLIT_MIN_FLOWS`]. Resolved once and cached.
fn auto_split_min() -> usize {
    static SPLIT_MIN: OnceLock<usize> = OnceLock::new();
    *SPLIT_MIN.get_or_init(|| match env_usize("NETSIM_SPLIT_MIN") {
        Some(n) if n > 0 => n,
        _ => DEFAULT_SPLIT_MIN_FLOWS,
    })
}

/// The unified engine configuration: engine choice plus every threading
/// knob, in one serializable value.
///
/// Construct with [`EngineConfig::new`] (or `default()` for the
/// [`WarmStart`](crate::RebalanceEngine::WarmStart) production engine) and
/// refine with the by-value builder methods:
///
/// ```
/// use netsim::{EngineConfig, RebalanceEngine};
///
/// let config = EngineConfig::new(RebalanceEngine::ParallelShard)
///     .workers(8)
///     .parallel_threshold(64)
///     .split_min_flows(512);
/// assert_eq!(config.resolved_workers(), 8);
/// assert!(config.parallel_capable());
/// config.validate().expect("a sane configuration");
/// ```
///
/// Zero means *auto* for [`workers`](Self::workers) (the `NETSIM_WORKERS`
/// environment variable, else the detected core count) and for
/// [`split_min_flows`](Self::split_min_flows) (`NETSIM_SPLIT_MIN`, else
/// [`DEFAULT_SPLIT_MIN_FLOWS`]). Zero is **meaningful** for
/// [`parallel_threshold`](Self::parallel_threshold): it makes every
/// multi-component flush shard, which the determinism tests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// The rebalance engine the network runs.
    pub engine: RebalanceEngine,
    /// Worker budget for the parallel engines: the maximum number of
    /// concurrent claimers (calling thread included) a flush may use, and
    /// the bin count of the LPT shard partition. `0` = auto (see above).
    /// The budget is a *logical* width — partitioning and statistics depend
    /// only on it, not on the machine — while the pool spawns at most
    /// `min(budget, cores) - 1` OS threads, so a budget of 8 on a 1-core
    /// box computes exactly what it computes on an 8-core box, serially.
    pub workers: usize,
    /// Minimum number of flows a flush must cover before it is sharded
    /// across components. `0` = always shard multi-component flushes.
    pub parallel_threshold: usize,
    /// Minimum number of unfixed flows on the bottleneck link before one
    /// component's fill round is split across workers (the work-stealing
    /// path for oversized components). `0` = auto (see above).
    pub split_min_flows: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new(RebalanceEngine::default())
    }
}

impl EngineConfig {
    /// A configuration for `engine` with automatic worker budget, the
    /// default parallel threshold and automatic split granularity.
    pub fn new(engine: RebalanceEngine) -> Self {
        EngineConfig {
            engine,
            workers: 0,
            parallel_threshold: DEFAULT_PARALLEL_THRESHOLD,
            split_min_flows: 0,
        }
    }

    /// Set the engine (builder style).
    pub fn engine(mut self, engine: RebalanceEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Set the worker budget (builder style). `0` = auto.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the parallel threshold (builder style). `0` = always shard.
    pub fn parallel_threshold(mut self, flows: usize) -> Self {
        self.parallel_threshold = flows;
        self
    }

    /// Set the split granularity (builder style). `0` = auto.
    pub fn split_min_flows(mut self, flows: usize) -> Self {
        self.split_min_flows = flows;
        self
    }

    /// Whether the configured engine ever dispatches to the worker pool.
    pub fn parallel_capable(&self) -> bool {
        matches!(
            self.engine,
            RebalanceEngine::ParallelShard | RebalanceEngine::WarmStart
        )
    }

    /// The effective worker budget: [`workers`](Self::workers), or the
    /// auto-resolved process default when it is `0`. Always at least 1.
    pub fn resolved_workers(&self) -> usize {
        let budget = if self.workers == 0 {
            auto_workers()
        } else {
            self.workers
        };
        budget.max(1)
    }

    /// The effective split granularity: [`split_min_flows`](Self::split_min_flows),
    /// or the auto-resolved default when it is `0`. Always at least 2 —
    /// splitting a single-flow round can never help.
    pub fn resolved_split_min(&self) -> usize {
        let min = if self.split_min_flows == 0 {
            auto_split_min()
        } else {
            self.split_min_flows
        };
        min.max(2)
    }

    /// Check the configuration for nonsense values. `Ok` configurations are
    /// accepted by [`Network::with_config`](crate::Network::with_config);
    /// the only rejection today is a worker budget above [`MAX_WORKERS`]
    /// (a corrupted or adversarial checkpoint, not a real machine).
    pub fn validate(&self) -> Result<(), String> {
        if self.workers > MAX_WORKERS {
            return Err(format!(
                "EngineConfig::workers = {} exceeds the supported maximum {MAX_WORKERS}",
                self.workers
            ));
        }
        Ok(())
    }
}

/// A persistent worker pool bound to one [`Network`](crate::Network).
///
/// Wraps the rayon shim's [`ThreadPool`](rayon::ThreadPool) (condvar-parked
/// workers, woken per dispatch) and pins the *logical* budget separately
/// from the *physical* thread count: the budget steers deterministic
/// decisions (shard bin counts, split engagement, statistics), while the
/// pool spawns `min(budget, cores) - 1` OS threads — the calling thread is
/// always the extra claimer. On a single-core machine that is zero spawned
/// threads: every dispatch degenerates to a serial loop with no
/// synchronisation, so the pool engines cost (almost) nothing over the
/// serial ones while still exercising the identical code paths.
pub(crate) struct WorkerPool {
    pool: rayon::ThreadPool,
    budget: usize,
    dispatches: u64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("budget", &self.budget)
            .field("threads", &self.threads())
            .field("dispatches", &self.dispatches)
            .finish()
    }
}

impl WorkerPool {
    /// Build a pool for a logical worker budget (clamped to at least 1).
    pub(crate) fn new(budget: usize) -> Self {
        let budget = budget.max(1);
        let cores = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        WorkerPool {
            pool: rayon::ThreadPool::new(budget.min(cores).saturating_sub(1)),
            budget,
            dispatches: 0,
        }
    }

    /// The logical worker budget this pool was built for.
    pub(crate) fn budget(&self) -> usize {
        self.budget
    }

    /// Number of OS threads actually spawned (informational).
    pub(crate) fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Total dispatches through this pool. Deterministic: a dispatch is
    /// counted whenever the engines hand the pool a task set, even when the
    /// pool executes it serially for lack of spawned threads.
    pub(crate) fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Total worker wakeups served. **Scheduling-dependent** — never
    /// compare across runs.
    pub(crate) fn wakeups(&self) -> u64 {
        self.pool.wakeups()
    }

    /// Run `f` once on every item, with at most `budget` concurrent
    /// claimers. Blocks until all items are processed.
    pub(crate) fn for_each_mut<T, F>(&mut self, items: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut T) + Sync,
    {
        self.dispatches += 1;
        self.pool.for_each_mut(items, self.budget, f);
    }
}

/// Per-worker scratch for the split fill of one oversized component
/// (allocated once per worker, reused across flushes; see
/// `Network::fill_link_split`). During the parallel phase each worker
/// records, privately, which flow slots it fixed (in claimed-chunk order)
/// and how many fixed flows crossed each link; the serial merge phase then
/// replays those counts in worker order, reconstructing the exact serial
/// outcome.
#[derive(Debug, Default)]
pub(crate) struct SplitScratch {
    /// Stamp distinguishing the current split round's link entries.
    pub(crate) stamp: u64,
    /// Per-link count of flows this worker fixed that cross the link
    /// (valid where `link_stamp` matches `stamp`).
    pub(crate) link_count: Vec<u32>,
    /// Per-link stamp guarding `link_count`.
    pub(crate) link_stamp: Vec<u64>,
    /// Links this worker touched this round, in first-touch order.
    pub(crate) touched: Vec<u32>,
    /// Flow slots this worker fixed this round, in claimed-chunk order.
    pub(crate) fixed: Vec<u32>,
    /// `(chunk_index, fixed.len() after the chunk)` pairs, ascending in
    /// `chunk_index` — enough to re-interleave all workers' `fixed` lists
    /// into the exact global (incidence) order during the merge.
    pub(crate) chunk_ends: Vec<(u32, u32)>,
}

impl SplitScratch {
    /// Make the per-link tables at least `links` long.
    pub(crate) fn ensure_links(&mut self, links: usize) {
        if self.link_count.len() < links {
            self.link_count.resize(links, 0);
            self.link_stamp.resize(links, 0);
        }
    }

    /// Reset the per-round lists and advance the stamp for a new round.
    pub(crate) fn begin_round(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        self.touched.clear();
        self.fixed.clear();
        self.chunk_ends.clear();
    }

    /// Heap bytes held by this scratch (for `MemoryFootprint::pool_bytes`).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.link_count.capacity() * std::mem::size_of::<u32>()
            + self.link_stamp.capacity() * std::mem::size_of::<u64>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
            + self.fixed.capacity() * std::mem::size_of::<u32>()
            + self.chunk_ends.capacity() * std::mem::size_of::<(u32, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip_and_defaults() {
        let c = EngineConfig::default();
        assert_eq!(c.engine, RebalanceEngine::WarmStart);
        assert_eq!(c.workers, 0, "auto by default");
        assert_eq!(c.parallel_threshold, DEFAULT_PARALLEL_THRESHOLD);
        assert_eq!(c.split_min_flows, 0, "auto by default");

        let c = EngineConfig::new(RebalanceEngine::DirtyComponent)
            .engine(RebalanceEngine::ParallelShard)
            .workers(5)
            .parallel_threshold(0)
            .split_min_flows(100);
        assert_eq!(c.engine, RebalanceEngine::ParallelShard);
        assert_eq!(c.resolved_workers(), 5);
        assert_eq!(c.parallel_threshold, 0);
        assert_eq!(c.resolved_split_min(), 100);
    }

    #[test]
    fn zero_workers_resolves_to_at_least_one() {
        assert!(EngineConfig::default().resolved_workers() >= 1);
    }

    #[test]
    fn split_min_never_below_two() {
        assert_eq!(
            EngineConfig::default()
                .split_min_flows(1)
                .resolved_split_min(),
            2
        );
    }

    #[test]
    fn parallel_capability_by_engine() {
        for (engine, capable) in [
            (RebalanceEngine::ScanPerEvent, false),
            (RebalanceEngine::BucketedBatched, false),
            (RebalanceEngine::DirtyComponent, false),
            (RebalanceEngine::ParallelShard, true),
            (RebalanceEngine::WarmStart, true),
        ] {
            assert_eq!(EngineConfig::new(engine).parallel_capable(), capable);
        }
    }

    #[test]
    fn validate_rejects_absurd_worker_budget() {
        assert!(EngineConfig::default()
            .workers(MAX_WORKERS)
            .validate()
            .is_ok());
        assert!(EngineConfig::default()
            .workers(MAX_WORKERS + 1)
            .validate()
            .is_err());
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = EngineConfig::new(RebalanceEngine::ParallelShard)
            .workers(3)
            .parallel_threshold(7)
            .split_min_flows(11);
        let json = serde_json::to_string(&c).unwrap();
        let back: EngineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn worker_pool_budget_is_logical_thread_count_is_physical() {
        let mut pool = WorkerPool::new(64);
        assert_eq!(pool.budget(), 64);
        let cores = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        assert!(pool.threads() <= cores.saturating_sub(1).min(63));
        let mut items: Vec<u64> = (0..100).collect();
        pool.for_each_mut(&mut items, |x| *x += 1);
        assert_eq!(items, (1..101).collect::<Vec<_>>());
        assert_eq!(pool.dispatches(), 1);
    }

    #[test]
    fn split_scratch_round_lifecycle() {
        let mut s = SplitScratch::default();
        s.ensure_links(4);
        s.begin_round();
        let stamp = s.stamp;
        s.link_count[2] = 5;
        s.link_stamp[2] = stamp;
        s.touched.push(2);
        s.fixed.extend([7, 9]);
        s.chunk_ends.push((0, 2));
        assert!(s.heap_bytes() > 0);
        s.begin_round();
        assert_ne!(s.stamp, stamp);
        assert!(s.touched.is_empty() && s.fixed.is_empty() && s.chunk_ends.is_empty());
    }
}
