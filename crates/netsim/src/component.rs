//! Incremental link-connectivity index for the dirty-component engine.
//!
//! The max–min fixpoint factors over the *connected components* of the
//! "shares a flow" relation on directed links: two links interact only if
//! some active flow crosses both (directly or transitively). A flow arrival
//! or departure can therefore change rates only inside the component(s) its
//! route touches — everything else is provably unchanged (see
//! `docs/ARCHITECTURE.md`, "Dirty-component recompute").
//!
//! [`LinkComponents`] maintains that partition incrementally:
//!
//! * **Union–find over links** (union by size, path halving). Activating a
//!   flow unions the links of its route in O(route · α).
//! * **Per-component flow lists** — each component root carries an intrusive
//!   singly-linked list of the [`FlowId`]s attached to it, concatenated in
//!   O(1) on union. The list is what lets a flush enumerate exactly the
//!   flows of a dirty component without scanning the global active set.
//! * **Conservative under removal, exact after a rebuilding flush.**
//!   Union–find cannot split, so a departed flow leaves its unions behind:
//!   between rebuilds the partition is a *coarsening* of the true one,
//!   which is safe — a flush recomputes a superset of the flows whose rates
//!   may change, and re-derives identical rates for the rest. A flush that
//!   chooses to pay for precision rebuilds exact connectivity for just the
//!   flushed region: [`LinkComponents::clear_list`] +
//!   [`LinkComponents::reset`] return the region to singletons and
//!   [`LinkComponents::attach`] re-unions the routes of the surviving
//!   flows. A flush of a component already spanning most of the active set
//!   skips the rebuild instead (splitting it could not shrink future
//!   flushes by much, and the rebuild is the flush's dominant overhead) —
//!   links orphaned by departed flows then dangle conservatively until a
//!   later rebuild sweeps them up, which only ever *over*-approximates
//!   connectivity. No global rebuild ever happens, so the cost of a flush
//!   stays proportional to the component it touched, not to the platform.
//!
//! List entries are validated by the caller during [`LinkComponents::gather`]
//! (the slab's generation check in `FlowId` rejects recycled slots), so a
//! finished flow's stale entry is dropped — and its arena node recycled —
//! the first time its component is flushed, which the dirty marks guarantee
//! happens at the same simulated instant the flow finished.
//!
//! # Disjointness, and why the parallel engine may shard by root
//!
//! The partition this structure maintains is what makes
//! `RebalanceEngine::ParallelShard` sound: every link belongs to exactly
//! one root, every attached flow's entire route was unioned into one
//! component at activation, and under coarsening a root only ever *absorbs*
//! whole components — it never splits one across roots. A flush that bins
//! the gathered flow lists **whole root by whole root** onto worker threads
//! therefore hands each worker a closed system: no link, no flow and no
//! incidence list is reachable from two shards, so per-shard fills read and
//! write disjoint state and re-derive exactly the rates a combined fill
//! would. (Binning anything finer than a root would break this — which is
//! why the shard scheduler partitions `dirty_roots`, never flow ranges.)

use p2p_common::FlowId;
use serde::{Deserialize, Serialize};

/// Sentinel for "no node" in the flow-list arena.
const NO_NODE: u32 = u32::MAX;

/// One intrusive flow-list node (arena-allocated, free-listed).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct FlowNode {
    flow: FlowId,
    next: u32,
}

/// Union–find over directed links with per-component flow lists.
///
/// The whole structure is checkpointed verbatim (parents, sizes, intrusive
/// lists, keys, the `next_key` counter): the partition is *history-dependent*
/// — which link happens to root a component depends on the union order — and
/// the warm-start engine keys its `FillRecord`s on roots and `key` epochs, so
/// reconstructing connectivity from the flow table instead would produce a
/// logically equal but differently-rooted partition and silently orphan
/// every warm record.
#[derive(Debug, Serialize, Deserialize)]
pub(crate) struct LinkComponents {
    /// Union–find parent per link (self-parent at roots).
    parent: Vec<u32>,
    /// Union-by-size weights (meaningful at roots).
    size: Vec<u32>,
    /// First flow-list node of the component (meaningful at roots).
    head: Vec<u32>,
    /// Last flow-list node of the component (for O(1) concatenation).
    tail: Vec<u32>,
    /// Live attached flows per component (meaningful at roots). Maintained
    /// by attach/detach/union/reset — list entries of *finished* flows do
    /// not count, so a flush can compare a component's live population
    /// against the network's attached total without walking the list.
    live: Vec<u32>,
    /// Nodes physically present in each component's list (meaningful at
    /// roots): live entries plus the stale entries of finished flows not
    /// yet reclaimed by a gather. `listed - live` is the component's
    /// deferred-GC debt, which the dense-flush fast path consults —
    /// per-root, so debt parked in idle components cannot wedge the
    /// heuristic for everyone else.
    listed: Vec<u32>,
    /// Flow-list node arena plus its free list.
    nodes: Vec<FlowNode>,
    free: Vec<u32>,
    /// Component epoch per link (meaningful at roots): bumped whenever the
    /// component rooted here changes shape by means an incremental consumer
    /// cannot account for flow-by-flow — a union actually merging two
    /// components, or a region rebuild (`clear_list`/`reset`). The warm-start
    /// engine keys its per-component `FillRecord`s on this value and discards
    /// a record whose key no longer matches its root
    /// ([`LinkComponents::key_of_root`]). Keys are drawn from a monotone
    /// counter and never reused, so a record can never accidentally match a
    /// rebuilt component.
    key: Vec<u64>,
    /// Next key value to hand out.
    next_key: u64,
}

impl LinkComponents {
    /// Every link starts as its own singleton component.
    pub(crate) fn new(links: usize) -> Self {
        LinkComponents {
            parent: (0..links as u32).collect(),
            size: vec![1; links],
            head: vec![NO_NODE; links],
            tail: vec![NO_NODE; links],
            live: vec![0; links],
            listed: vec![0; links],
            nodes: Vec::new(),
            free: Vec::new(),
            key: vec![0; links],
            next_key: 1,
        }
    }

    /// Component epoch of the component rooted at `root` (see the `key`
    /// field). Stable across attaches/detaches that stay within one
    /// component; changes on merges and region rebuilds.
    /// Approximate heap bytes held by the union–find arrays and the
    /// intrusive node pool — the component side of the network's
    /// `memory_footprint` telemetry. Counts capacities, not lengths,
    /// matching the slab accounting.
    pub(crate) fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.parent.capacity() * size_of::<u32>()
            + self.size.capacity() * size_of::<u32>()
            + self.head.capacity() * size_of::<u32>()
            + self.tail.capacity() * size_of::<u32>()
            + self.live.capacity() * size_of::<u32>()
            + self.listed.capacity() * size_of::<u32>()
            + self.nodes.capacity() * size_of::<FlowNode>()
            + self.free.capacity() * size_of::<u32>()
            + self.key.capacity() * size_of::<u64>()
    }

    pub(crate) fn key_of_root(&self, root: usize) -> u64 {
        self.key[root]
    }

    /// Assign `link` a fresh, never-before-used key.
    fn bump_key(&mut self, link: usize) {
        self.key[link] = self.next_key;
        self.next_key += 1;
    }

    /// Root of `link`'s component (path-halving).
    pub(crate) fn find(&mut self, mut link: usize) -> usize {
        while self.parent[link] as usize != link {
            let grandparent = self.parent[self.parent[link] as usize];
            self.parent[link] = grandparent;
            link = grandparent as usize;
        }
        link
    }

    /// Merge the components of `a` and `b`; returns the surviving root.
    /// The smaller component's flow list is concatenated onto the larger's.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return ra;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        // A real merge changes both components' shapes: neither side's
        // recorded fill can describe the union, so both keys die (the loser's
        // too — it may become a root again after a future `reset`, and must
        // not resurrect an old record).
        self.bump_key(ra);
        self.bump_key(rb);
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.live[ra] += self.live[rb];
        self.live[rb] = 0;
        self.listed[ra] += self.listed[rb];
        self.listed[rb] = 0;
        if self.head[rb] != NO_NODE {
            if self.tail[ra] == NO_NODE {
                self.head[ra] = self.head[rb];
            } else {
                self.nodes[self.tail[ra] as usize].next = self.head[rb];
            }
            self.tail[ra] = self.tail[rb];
            self.head[rb] = NO_NODE;
            self.tail[rb] = NO_NODE;
        }
        ra
    }

    /// Union every link of `links` into one component and append `flow` to
    /// that component's list. `links` must be non-empty (loopback flows hold
    /// no links and are never attached).
    pub(crate) fn attach(&mut self, links: &[usize], flow: FlowId) {
        let mut root = self.find(links[0]);
        for &l in &links[1..] {
            root = self.union(root, l);
        }
        let node = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = FlowNode {
                    flow,
                    next: NO_NODE,
                };
                i
            }
            None => {
                self.nodes.push(FlowNode {
                    flow,
                    next: NO_NODE,
                });
                (self.nodes.len() - 1) as u32
            }
        };
        if self.tail[root] == NO_NODE {
            self.head[root] = node;
        } else {
            self.nodes[self.tail[root] as usize].next = node;
        }
        self.tail[root] = node;
        self.live[root] += 1;
        self.listed[root] += 1;
    }

    /// Record that one attached flow of `link`'s component finished (its
    /// list entry goes stale; [`LinkComponents::gather`] reclaims it later).
    pub(crate) fn detach_one(&mut self, link: usize) {
        let root = self.find(link);
        self.live[root] = self.live[root].saturating_sub(1);
    }

    /// Live attached flows of the component rooted at `root`. Conservative
    /// in the same way the partition is: a stale root orphaned by a region
    /// rebuild may keep a nonzero count, which can only *over*-state how
    /// many flows a set of dirty components covers.
    pub(crate) fn live_of_root(&self, root: usize) -> u32 {
        self.live[root]
    }

    /// Stale list entries (finished flows not yet garbage-collected) of the
    /// component rooted at `root` — the debt a gather of this root would
    /// reclaim.
    pub(crate) fn stale_of_root(&self, root: usize) -> u32 {
        self.listed[root].saturating_sub(self.live[root])
    }

    /// Walk the flow list of the component rooted at `root`, pushing every
    /// id for which `keep` returns true into `out` and unlinking (and
    /// recycling) the rest; returns how many entries were dropped. The list
    /// itself survives — a flush that decides against rebuilding the region
    /// keeps the garbage-collected list as is.
    pub(crate) fn gather(
        &mut self,
        root: usize,
        out: &mut Vec<FlowId>,
        mut keep: impl FnMut(FlowId) -> bool,
    ) -> usize {
        let mut dropped = 0;
        let mut prev = NO_NODE;
        let mut n = self.head[root];
        while n != NO_NODE {
            let node = self.nodes[n as usize];
            if keep(node.flow) {
                out.push(node.flow);
                prev = n;
            } else {
                if prev == NO_NODE {
                    self.head[root] = node.next;
                } else {
                    self.nodes[prev as usize].next = node.next;
                }
                if node.next == NO_NODE {
                    self.tail[root] = prev;
                }
                self.free.push(n);
                dropped += 1;
            }
            n = node.next;
        }
        self.listed[root] -= dropped as u32;
        dropped
    }

    /// Recycle every node of the component list rooted at `root`, leaving it
    /// empty with zeroed live/listed counts. The first step of a region
    /// rebuild (the gathered flows are re-attached afterwards, restoring
    /// the counts of whatever root they then land under).
    ///
    /// Zeroing `live` here matters even though most of the region's links
    /// are also `reset` right after: the root link itself may be neither
    /// touched by a surviving flow nor dirty, in which case it is never
    /// reset — leaving a phantom live count behind would inflate the
    /// coverage of any future component that absorbs this root and pin its
    /// `stale_of_root` debt at zero.
    pub(crate) fn clear_list(&mut self, root: usize) {
        let mut n = self.head[root];
        while n != NO_NODE {
            self.free.push(n);
            n = self.nodes[n as usize].next;
        }
        self.head[root] = NO_NODE;
        self.tail[root] = NO_NODE;
        self.live[root] = 0;
        self.listed[root] = 0;
        self.bump_key(root);
    }

    /// Return `link` to a singleton component with an empty flow list.
    ///
    /// Only valid for links of a region whose lists have been cleared (the
    /// flush calls [`LinkComponents::clear_list`] on every dirty root before
    /// resetting); resetting a link that still roots a populated list would
    /// leak that list.
    pub(crate) fn reset(&mut self, link: usize) {
        debug_assert_eq!(
            self.head[link], NO_NODE,
            "resetting link {link} would leak its flow list"
        );
        self.parent[link] = link as u32;
        self.size[link] = 1;
        self.live[link] = 0;
        self.listed[link] = 0;
        self.head[link] = NO_NODE;
        self.tail[link] = NO_NODE;
        self.bump_key(link);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u64) -> FlowId {
        FlowId::new(n)
    }

    /// Gather keeping everything (a non-destructive list walk).
    fn gathered(c: &mut LinkComponents, root: usize) -> Vec<FlowId> {
        let mut out = vec![];
        c.gather(root, &mut out, |_| true);
        out
    }

    #[test]
    fn attach_unions_route_links_and_collects_flows() {
        let mut c = LinkComponents::new(6);
        c.attach(&[0, 1], id(10));
        c.attach(&[2, 3], id(11));
        assert_ne!(c.find(0), c.find(2), "disjoint routes stay separate");
        assert_eq!(c.find(0), c.find(1));
        // A bridging flow merges the two components and their lists.
        c.attach(&[1, 2], id(12));
        let root = c.find(0);
        assert_eq!(root, c.find(3));
        let mut flows = gathered(&mut c, root);
        flows.sort();
        assert_eq!(flows, vec![id(10), id(11), id(12)]);
        // Gathering is non-destructive: a second walk sees the same flows.
        assert_eq!(gathered(&mut c, root).len(), 3);
        assert_eq!(c.find(0), c.find(3));
    }

    #[test]
    fn gather_unlinks_rejected_entries_anywhere_in_the_list() {
        let mut c = LinkComponents::new(2);
        for n in 0..5u64 {
            c.attach(&[0, 1], id(n));
        }
        let root = c.find(0);
        // Reject head, middle and tail in one pass.
        let mut out = vec![];
        c.gather(root, &mut out, |f| ![0, 2, 4].contains(&f.raw()));
        assert_eq!(out, vec![id(1), id(3)]);
        // The rejected nodes are gone for good and their slots recycled.
        assert_eq!(gathered(&mut c, root), vec![id(1), id(3)]);
        c.attach(&[0, 1], id(9));
        assert_eq!(gathered(&mut c, root), vec![id(1), id(3), id(9)]);
        assert_eq!(c.nodes.len(), 5, "recycled nodes must be reused");
    }

    #[test]
    fn clear_reset_and_reattach_splits_a_region_exactly() {
        let mut c = LinkComponents::new(4);
        c.attach(&[0, 1], id(1));
        c.attach(&[1, 2], id(2));
        c.attach(&[2, 3], id(3));
        let root = c.find(0);
        assert_eq!(gathered(&mut c, root).len(), 3);
        // Rebuild as a flush would, pretending flow 2 (the bridge) finished.
        c.clear_list(root);
        for l in 0..4 {
            c.reset(l);
        }
        c.attach(&[0, 1], id(1));
        c.attach(&[2, 3], id(3));
        assert_eq!(c.find(0), c.find(1));
        assert_eq!(c.find(2), c.find(3));
        assert_ne!(c.find(0), c.find(2), "the bridge is gone");
        let left = c.find(0);
        assert_eq!(gathered(&mut c, left), vec![id(1)]);
        let right = c.find(2);
        assert_eq!(gathered(&mut c, right), vec![id(3)]);
    }

    #[test]
    fn stale_debt_is_tracked_per_root_and_reclaimed_by_gather() {
        let mut c = LinkComponents::new(4);
        // Two disjoint components; three flows each.
        for n in 0..3u64 {
            c.attach(&[0, 1], id(n));
            c.attach(&[2, 3], id(10 + n));
        }
        let (left, right) = (c.find(0), c.find(2));
        assert_eq!(c.stale_of_root(left), 0);
        // Two left flows finish: left's debt grows, right's stays zero.
        c.detach_one(0);
        c.detach_one(1);
        assert_eq!(c.stale_of_root(left), 2);
        assert_eq!(c.live_of_root(left), 1);
        assert_eq!(c.stale_of_root(right), 0, "idle components carry no debt");
        // Gathering the left root reclaims exactly its stale entries.
        let mut out = vec![];
        let dropped = c.gather(left, &mut out, |f| f.raw() == 2);
        assert_eq!(dropped, 2);
        assert_eq!(out, vec![id(2)]);
        assert_eq!(c.stale_of_root(left), 0);
        // A union merges both live and debt counts.
        c.detach_one(2);
        c.attach(&[1, 2], id(99));
        let merged = c.find(0);
        assert_eq!(
            c.live_of_root(merged),
            1 + 2 + 1,
            "left + right + the bridge"
        );
        assert_eq!(
            c.stale_of_root(merged),
            1,
            "right's debt survives the union"
        );
    }

    #[test]
    fn clear_list_zeroes_counts_even_when_the_root_link_is_never_reset() {
        let mut c = LinkComponents::new(3);
        c.attach(&[0, 1], id(1));
        c.attach(&[1, 2], id(2));
        let root = c.find(0);
        c.detach_one(0); // flow 1 finished; its list entry is now stale
        assert_eq!(c.live_of_root(root), 1);
        assert_eq!(c.stale_of_root(root), 1);
        // Rebuild as a flush whose surviving flows only touch links 1 and 2
        // would: the root link itself is neither touched nor dirty, so
        // `reset` never visits it — `clear_list` alone must leave no
        // phantom counts behind for a future component to absorb.
        c.clear_list(root);
        assert_eq!(c.live_of_root(root), 0, "no phantom live count");
        assert_eq!(c.stale_of_root(root), 0);
        c.reset(1);
        c.reset(2);
        c.attach(&[1, 2], id(2));
        let rebuilt = c.find(2);
        assert_eq!(c.live_of_root(rebuilt), 1);
        assert_eq!(c.stale_of_root(rebuilt), 0);
    }

    #[test]
    fn component_keys_survive_intra_component_churn_and_die_on_merges() {
        let mut c = LinkComponents::new(4);
        c.attach(&[0, 1], id(1));
        let root = c.find(0);
        let k0 = c.key_of_root(root);
        // Attaching and detaching flows *within* the component leaves the
        // key alone — that is exactly the churn a warm start accounts for.
        c.attach(&[0, 1], id(2));
        c.detach_one(0);
        let root_after = c.find(0);
        assert_eq!(c.key_of_root(root_after), k0);
        // A merge with another (even empty) component kills both keys.
        c.attach(&[2, 3], id(3));
        let other = c.find(2);
        let k_other = c.key_of_root(other);
        c.attach(&[1, 2], id(4));
        let merged = c.find(0);
        assert_ne!(c.key_of_root(merged), k0);
        assert_ne!(c.key_of_root(merged), k_other);
        // A region rebuild hands out fresh keys too.
        let k1 = c.key_of_root(merged);
        c.clear_list(merged);
        assert_ne!(c.key_of_root(merged), k1);
        for l in 0..4 {
            let before = c.key_of_root(l);
            c.reset(l);
            assert_ne!(c.key_of_root(l), before, "reset must invalidate");
        }
    }

    #[test]
    fn cleared_nodes_are_recycled() {
        let mut c = LinkComponents::new(2);
        for round in 0..100u64 {
            c.attach(&[0, 1], id(round));
            let root = c.find(0);
            assert_eq!(gathered(&mut c, root), vec![id(round)]);
            c.clear_list(root);
            c.reset(0);
            c.reset(1);
        }
        assert_eq!(c.nodes.len(), 1, "the arena must not grow per attach");
    }
}
