//! Sessions and sockets.
//!
//! A [`Session`] is the data-plane object between two peers: it knows the
//! current network context, the application scheme, and the channel
//! configuration the adaptation controller picked, and it accounts for the
//! traffic it carried. A [`Socket`] is a peer's bundle of sessions, opened
//! lazily towards each remote peer — this is the API surface the P2PDC
//! executor talks to.
//!
//! Reconfiguration is the "self-adaptive" part: when the application switches
//! scheme mid-computation (e.g. synchronous → asynchronous once the residual
//! is small) the socket renegotiates every session, paying one handshake per
//! affected channel.
//!
//! Robustness is the other half of self-adaptation: when the remote peer
//! crash-stops mid-session, [`Session::reroute`] tries to keep the data
//! flowing through a surviving *relay* peer ([`SessionPath::Relayed`]), with
//! a bounded exponential-backoff retry budget ([`RetryPolicy`]). Once the
//! budget is spent the session fails deterministically
//! ([`SessionPath::Failed`]) — it never wedges.

use crate::adaptation::AdaptationController;
use crate::channel::ChannelConfig;
use crate::context::NetworkContext;
use crate::scheme::IterativeScheme;
use netsim::{Platform, ProtocolCosts};
use p2p_common::{HostId, SimDuration};
use std::collections::HashMap;

/// Bounded retry/backoff budget for re-routing a broken session.
///
/// Attempt `k` (zero-based) waits `base_backoff × multiplier^k` before
/// probing for a relay; after `budget` attempts the session fails
/// deterministically. The defaults (4 attempts, 500 ms base, ×2) give up
/// after 500 ms + 1 s + 2 s + 4 s = 7.5 s of simulated effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum reroute attempts before the session is declared failed.
    pub budget: u32,
    /// Backoff before the first attempt.
    pub base_backoff: SimDuration,
    /// Exponential growth factor between consecutive attempts.
    pub multiplier: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            budget: 4,
            base_backoff: SimDuration::from_millis(500),
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff paid before zero-based attempt `attempt`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let mut factor = 1u64;
        for _ in 0..attempt {
            factor = factor.saturating_mul(self.multiplier);
        }
        self.base_backoff.saturating_mul(factor)
    }

    /// Total simulated time a session can spend retrying before it fails.
    pub fn max_total_backoff(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for k in 0..self.budget {
            total += self.backoff(k);
        }
        total
    }
}

/// One wire hop a recorded send traverses: `bytes` cross the network from
/// `src` to `dst`.
///
/// [`Session::record_send`] returns one leg for a direct session and two for
/// a relayed one (local → relay, relay → remote). A caller that drives a real
/// [`netsim`] platform starts one flow per leg, so the detour's bytes cross
/// the simulated wire exactly as they are accounted in [`SessionStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendLeg {
    /// Host the leg leaves from.
    pub src: HostId,
    /// Host the leg arrives at.
    pub dst: HostId,
    /// Wire bytes carried on this leg (payload + channel header).
    pub bytes: u64,
}

/// The current data path of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPath {
    /// Traffic flows directly to the remote peer.
    Direct,
    /// The direct path died; traffic is relayed through a surviving peer.
    Relayed {
        /// The relay host.
        via: HostId,
    },
    /// The retry budget is spent: the transfer was abandoned. Terminal.
    Failed,
}

/// Result of one [`Session::reroute`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RerouteOutcome {
    /// A surviving relay was found; the session carries on through it.
    Rerouted {
        /// The relay host now carrying the traffic.
        via: HostId,
        /// Backoff paid before this attempt succeeded.
        backoff: SimDuration,
    },
    /// No viable relay this attempt; budget remains — try again after the
    /// backoff.
    Retrying {
        /// Backoff to pay before the next attempt.
        backoff: SimDuration,
    },
    /// The retry budget is exhausted; the session is failed (terminal).
    Failed,
}

/// One configured channel between a local and a remote peer.
#[derive(Debug, Clone)]
pub struct Session {
    /// Local endpoint.
    pub local: HostId,
    /// Remote endpoint.
    pub remote: HostId,
    /// Network context the channel was configured for.
    pub context: NetworkContext,
    /// Scheme the channel was configured for.
    pub scheme: IterativeScheme,
    /// The selected channel configuration.
    pub config: ChannelConfig,
    /// Current data path (direct, relayed, or failed).
    pub path: SessionPath,
    reconfigurations: u32,
    reroute_attempts: u32,
    messages_sent: u64,
    bytes_sent: u64,
}

impl Session {
    /// Open a session: classify the route and ask the controller for a
    /// configuration.
    pub fn open(
        platform: &mut Platform,
        controller: &mut AdaptationController,
        local: HostId,
        remote: HostId,
        scheme: IterativeScheme,
    ) -> Session {
        let context = NetworkContext::classify(platform, local, remote);
        let config = controller.select(scheme, context);
        Session {
            local,
            remote,
            context,
            scheme,
            config,
            path: SessionPath::Direct,
            reconfigurations: 0,
            reroute_attempts: 0,
            messages_sent: 0,
            bytes_sent: 0,
        }
    }

    /// Time to establish (or re-establish) the channel: one route round-trip
    /// per handshake exchange. A relayed session handshakes with its relay; a
    /// failed session has nothing left to establish.
    pub fn handshake_delay(&self, platform: &mut Platform) -> SimDuration {
        let far_end = match self.path {
            SessionPath::Direct => self.remote,
            SessionPath::Relayed { via } => via,
            SessionPath::Failed => return SimDuration::ZERO,
        };
        if self.local == far_end {
            return SimDuration::ZERO;
        }
        let route = platform.route(self.local, far_end);
        route
            .latency
            .saturating_mul(2 * self.config.handshake_rtts() as u64)
    }

    /// One attempt to re-route a session whose current path died (the remote
    /// peer — or the relay — crash-stopped mid-transfer).
    ///
    /// The attempt pays `policy.backoff(attempts_so_far)`, then scans
    /// `candidates` in the given order for the first host with a live route
    /// from the local endpoint (candidates equal to either endpoint are
    /// skipped). On success the channel is re-classified and re-configured
    /// for the relay leg; once `policy.budget` attempts are spent the session
    /// transitions to [`SessionPath::Failed`] and stays there. Fully
    /// deterministic: outcome depends only on the candidate order and the
    /// platform, never on iteration order of any hash map.
    pub fn reroute(
        &mut self,
        platform: &mut Platform,
        controller: &mut AdaptationController,
        policy: &RetryPolicy,
        candidates: &[HostId],
    ) -> RerouteOutcome {
        if self.path == SessionPath::Failed {
            return RerouteOutcome::Failed;
        }
        if self.reroute_attempts >= policy.budget {
            self.path = SessionPath::Failed;
            return RerouteOutcome::Failed;
        }
        let backoff = policy.backoff(self.reroute_attempts);
        self.reroute_attempts += 1;
        let relay = candidates.iter().copied().find(|&c| {
            c != self.local && c != self.remote && platform.route_uncached(self.local, c).is_some()
        });
        match relay {
            Some(via) => {
                self.path = SessionPath::Relayed { via };
                // The relay leg may cross a different network context than
                // the dead direct path; adapt the channel to it.
                let context = NetworkContext::classify(platform, self.local, via);
                self.context = context;
                let new_config = controller.select(self.scheme, context);
                if new_config != self.config {
                    self.config = new_config;
                    self.reconfigurations += 1;
                }
                RerouteOutcome::Rerouted { via, backoff }
            }
            None if self.reroute_attempts >= policy.budget => {
                self.path = SessionPath::Failed;
                RerouteOutcome::Failed
            }
            None => RerouteOutcome::Retrying { backoff },
        }
    }

    /// Re-route until the session is either relayed or failed, accumulating
    /// the backoff a time-stepped caller would have paid. Terminates after at
    /// most `policy.budget` attempts — a broken session can never wedge.
    pub fn reroute_until_resolved(
        &mut self,
        platform: &mut Platform,
        controller: &mut AdaptationController,
        policy: &RetryPolicy,
        candidates: &[HostId],
    ) -> (RerouteOutcome, SimDuration) {
        let mut waited = SimDuration::ZERO;
        loop {
            match self.reroute(platform, controller, policy, candidates) {
                RerouteOutcome::Retrying { backoff } => waited += backoff,
                done => {
                    if let RerouteOutcome::Rerouted { backoff, .. } = done {
                        waited += backoff;
                    }
                    return (done, waited);
                }
            }
        }
    }

    /// Number of reroute attempts consumed from the retry budget.
    pub fn reroute_attempts(&self) -> u32 {
        self.reroute_attempts
    }

    /// Switch the session to a new scheme. Returns `true` (and bumps the
    /// reconfiguration counter) if the channel configuration actually changed.
    pub fn reconfigure(
        &mut self,
        controller: &mut AdaptationController,
        scheme: IterativeScheme,
    ) -> bool {
        self.scheme = scheme;
        let new_config = controller.select(scheme, self.context);
        if new_config != self.config {
            self.config = new_config;
            self.reconfigurations += 1;
            true
        } else {
            false
        }
    }

    /// Account for one application message of `payload_bytes` and describe
    /// the wire legs it traverses.
    ///
    /// A direct session pays one leg (local → remote). A **relayed** session
    /// pays the detour: the same wire bytes on the local → relay leg *and*
    /// again on the relay → remote leg, so relayed traffic always costs at
    /// least as much as the direct path would for the same payload. A failed
    /// session carries nothing — no legs, no accounting.
    ///
    /// Callers that drive a real [`netsim`] platform start one flow per
    /// returned [`SendLeg`]; the per-session counters reported by
    /// [`Session::traffic`] are the sum over those same legs.
    pub fn record_send(&mut self, payload_bytes: u64) -> Vec<SendLeg> {
        let wire = payload_bytes + self.config.header_bytes();
        let legs = match self.path {
            SessionPath::Direct => vec![SendLeg {
                src: self.local,
                dst: self.remote,
                bytes: wire,
            }],
            SessionPath::Relayed { via } => vec![
                SendLeg {
                    src: self.local,
                    dst: via,
                    bytes: wire,
                },
                SendLeg {
                    src: via,
                    dst: self.remote,
                    bytes: wire,
                },
            ],
            SessionPath::Failed => Vec::new(),
        };
        if !legs.is_empty() {
            self.messages_sent += 1;
            self.bytes_sent += wire * legs.len() as u64;
        }
        legs
    }

    /// Per-message costs of the current configuration.
    pub fn costs(&self) -> ProtocolCosts {
        self.config.protocol_costs()
    }

    /// Number of times the channel was reconfigured.
    pub fn reconfigurations(&self) -> u32 {
        self.reconfigurations
    }

    /// Messages and wire bytes sent so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.messages_sent, self.bytes_sent)
    }
}

/// Aggregate statistics over a socket's sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Open sessions.
    pub sessions: usize,
    /// Application messages sent.
    pub messages_sent: u64,
    /// Wire bytes sent (payload + headers).
    pub bytes_sent: u64,
    /// Total channel reconfigurations.
    pub reconfigurations: u64,
    /// Sessions currently running through a relay.
    pub relayed: usize,
    /// Sessions that exhausted their retry budget and failed.
    pub failed: usize,
    /// Total reroute attempts consumed across all sessions.
    pub reroute_attempts: u64,
}

/// A peer's bundle of sessions.
#[derive(Debug)]
pub struct Socket {
    local: HostId,
    scheme: IterativeScheme,
    controller: AdaptationController,
    retry_policy: RetryPolicy,
    sessions: HashMap<HostId, Session>,
}

impl Socket {
    /// Create a socket for a peer running the given scheme.
    pub fn new(local: HostId, scheme: IterativeScheme) -> Self {
        Socket {
            local,
            scheme,
            controller: AdaptationController::new(),
            retry_policy: RetryPolicy::default(),
            sessions: HashMap::new(),
        }
    }

    /// Override the reroute retry policy (builder style).
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// The socket's reroute retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry_policy
    }

    /// Local endpoint.
    pub fn local(&self) -> HostId {
        self.local
    }

    /// Current scheme.
    pub fn scheme(&self) -> IterativeScheme {
        self.scheme
    }

    /// Get (opening lazily) the session towards `remote`.
    pub fn session(&mut self, platform: &mut Platform, remote: HostId) -> &mut Session {
        if !self.sessions.contains_key(&remote) {
            let s = Session::open(
                platform,
                &mut self.controller,
                self.local,
                remote,
                self.scheme,
            );
            self.sessions.insert(remote, s);
        }
        self.sessions.get_mut(&remote).expect("just inserted")
    }

    /// Switch every open session to a new scheme. Returns how many channels
    /// actually changed configuration.
    pub fn set_scheme(&mut self, scheme: IterativeScheme) -> usize {
        self.scheme = scheme;
        let mut changed = 0;
        for s in self.sessions.values_mut() {
            if s.reconfigure(&mut self.controller, scheme) {
                changed += 1;
            }
        }
        changed
    }

    /// The remote peer at `remote` crash-stopped: re-route the session to it
    /// (if one is open) until it is relayed or failed, burning retry budget
    /// and simulated backoff time. Returns the outcome and the total backoff
    /// paid, or `None` if no session towards `remote` was open.
    pub fn handle_remote_failure(
        &mut self,
        platform: &mut Platform,
        remote: HostId,
        survivors: &[HostId],
    ) -> Option<(RerouteOutcome, SimDuration)> {
        let policy = self.retry_policy;
        let session = self.sessions.get_mut(&remote)?;
        Some(session.reroute_until_resolved(platform, &mut self.controller, &policy, survivors))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SessionStats {
        let mut st = SessionStats {
            sessions: self.sessions.len(),
            ..SessionStats::default()
        };
        for s in self.sessions.values() {
            let (m, b) = s.traffic();
            st.messages_sent += m;
            st.bytes_sent += b;
            st.reconfigurations += s.reconfigurations() as u64;
            st.reroute_attempts += u64::from(s.reroute_attempts());
            match s.path {
                SessionPath::Relayed { .. } => st.relayed += 1,
                SessionPath::Failed => st.failed += 1,
                SessionPath::Direct => {}
            }
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{cluster_bordeplage, daisy_xdsl, HostSpec};

    #[test]
    fn sessions_classify_their_context_on_open() {
        let mut cluster = cluster_bordeplage(4, HostSpec::default());
        let mut ctl = AdaptationController::new();
        let s = Session::open(
            &mut cluster.platform,
            &mut ctl,
            cluster.hosts[0],
            cluster.hosts[1],
            IterativeScheme::Synchronous,
        );
        assert_eq!(s.context, NetworkContext::IntraCluster);
        assert_eq!(ctl.decisions(), 1);
    }

    #[test]
    fn handshake_delay_scales_with_route_latency() {
        let mut cluster = cluster_bordeplage(4, HostSpec::default());
        let mut xdsl = daisy_xdsl(16, HostSpec::default(), 1);
        let mut ctl = AdaptationController::new();
        let near = Session::open(
            &mut cluster.platform,
            &mut ctl,
            cluster.hosts[0],
            cluster.hosts[1],
            IterativeScheme::Synchronous,
        );
        let far = Session::open(
            &mut xdsl.platform,
            &mut ctl,
            xdsl.hosts[0],
            xdsl.hosts[10],
            IterativeScheme::Synchronous,
        );
        assert!(
            far.handshake_delay(&mut xdsl.platform) > near.handshake_delay(&mut cluster.platform)
        );
    }

    #[test]
    fn socket_opens_sessions_lazily_and_caches_them() {
        let mut topo = cluster_bordeplage(4, HostSpec::default());
        let mut sock = Socket::new(topo.hosts[0], IterativeScheme::Synchronous);
        let cfg1 = sock
            .session(&mut topo.platform, topo.hosts[1])
            .config
            .clone();
        sock.session(&mut topo.platform, topo.hosts[1])
            .record_send(100);
        sock.session(&mut topo.platform, topo.hosts[2])
            .record_send(200);
        let cfg2 = sock
            .session(&mut topo.platform, topo.hosts[1])
            .config
            .clone();
        assert_eq!(cfg1, cfg2);
        let st = sock.stats();
        assert_eq!(st.sessions, 2);
        assert_eq!(st.messages_sent, 2);
        assert!(st.bytes_sent > 300, "headers must be accounted for");
    }

    #[test]
    fn scheme_switch_reconfigures_channels() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut sock = Socket::new(topo.hosts[0], IterativeScheme::Synchronous);
        sock.session(&mut topo.platform, topo.hosts[1]);
        sock.session(&mut topo.platform, topo.hosts[2]);
        let changed = sock.set_scheme(IterativeScheme::Asynchronous);
        assert_eq!(changed, 2);
        assert_eq!(sock.stats().reconfigurations, 2);
        // Switching to the same scheme again changes nothing.
        assert_eq!(sock.set_scheme(IterativeScheme::Asynchronous), 0);
    }

    #[test]
    fn reroute_picks_the_first_reachable_relay_deterministically() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut ctl = AdaptationController::new();
        let mut s = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[1],
            IterativeScheme::Synchronous,
        );
        let policy = RetryPolicy::default();
        // Candidates include both endpoints (must be skipped) and two valid
        // relays; the first valid one in order must win, every time.
        let candidates = [topo.hosts[0], topo.hosts[1], topo.hosts[5], topo.hosts[3]];
        let out = s.reroute(&mut topo.platform, &mut ctl, &policy, &candidates);
        assert_eq!(
            out,
            RerouteOutcome::Rerouted {
                via: topo.hosts[5],
                backoff: policy.backoff(0)
            }
        );
        assert_eq!(s.path, SessionPath::Relayed { via: topo.hosts[5] });
        assert_eq!(s.reroute_attempts(), 1);
    }

    #[test]
    fn reroute_fails_deterministically_after_the_budget() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut ctl = AdaptationController::new();
        let mut s = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[1],
            IterativeScheme::Synchronous,
        );
        let policy = RetryPolicy {
            budget: 3,
            base_backoff: SimDuration::from_millis(100),
            multiplier: 2,
        };
        // No survivors at all: every attempt retries, then the budget runs out.
        let (out, waited) = s.reroute_until_resolved(&mut topo.platform, &mut ctl, &policy, &[]);
        assert_eq!(out, RerouteOutcome::Failed);
        assert_eq!(s.path, SessionPath::Failed);
        assert_eq!(s.reroute_attempts(), 3);
        // 100ms + 200ms for the two Retrying attempts; the third attempt
        // fails terminally without waiting.
        assert_eq!(waited, SimDuration::from_millis(300));
        assert!(waited <= policy.max_total_backoff());
        // Failed is terminal: further attempts change nothing.
        assert_eq!(
            s.reroute(&mut topo.platform, &mut ctl, &policy, &[topo.hosts[2]]),
            RerouteOutcome::Failed
        );
        assert_eq!(s.handshake_delay(&mut topo.platform), SimDuration::ZERO);
    }

    #[test]
    fn socket_reroutes_its_broken_session_and_reports_stats() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut sock = Socket::new(topo.hosts[0], IterativeScheme::Synchronous);
        sock.session(&mut topo.platform, topo.hosts[1]);
        sock.session(&mut topo.platform, topo.hosts[2]);
        let survivors = [topo.hosts[4]];
        let (out, _) = sock
            .handle_remote_failure(&mut topo.platform, topo.hosts[1], &survivors)
            .expect("session exists");
        assert!(matches!(out, RerouteOutcome::Rerouted { .. }));
        // No session towards an unknown remote: nothing to re-route.
        assert!(sock
            .handle_remote_failure(&mut topo.platform, topo.hosts[7], &survivors)
            .is_none());
        let st = sock.stats();
        assert_eq!(st.sessions, 2);
        assert_eq!(st.relayed, 1);
        assert_eq!(st.failed, 0);
        assert_eq!(st.reroute_attempts, 1);
    }

    #[test]
    fn relayed_sessions_charge_the_detour_not_just_the_direct_path() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut ctl = AdaptationController::new();
        let payload = 1_000u64;

        // Direct baseline.
        let mut direct = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[1],
            IterativeScheme::Synchronous,
        );
        let direct_legs = direct.record_send(payload);
        assert_eq!(direct_legs.len(), 1);
        let (_, direct_bytes) = direct.traffic();

        // Same endpoints, same payload, but through a relay.
        let mut relayed = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[1],
            IterativeScheme::Synchronous,
        );
        let policy = RetryPolicy::default();
        let out = relayed.reroute(&mut topo.platform, &mut ctl, &policy, &[topo.hosts[5]]);
        assert!(matches!(out, RerouteOutcome::Rerouted { .. }));
        let legs = relayed.record_send(payload);
        assert_eq!(legs.len(), 2, "a relayed send pays both hops");
        assert_eq!((legs[0].src, legs[0].dst), (topo.hosts[0], topo.hosts[5]));
        assert_eq!((legs[1].src, legs[1].dst), (topo.hosts[5], topo.hosts[1]));
        assert_eq!(legs[0].bytes, legs[1].bytes);

        let (_, relayed_bytes) = relayed.traffic();
        assert!(
            relayed_bytes >= direct_bytes,
            "relayed wire bytes ({relayed_bytes}) must be at least the direct \
             cost ({direct_bytes}) for the same payload"
        );
        // Both hops carry payload + header; the relay leg's header may differ
        // from the original channel's because the channel was re-configured
        // for the relay context, but it is charged for *two* crossings.
        assert_eq!(relayed_bytes, 2 * (payload + relayed.config.header_bytes()));
    }

    #[test]
    fn failed_sessions_carry_nothing() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut ctl = AdaptationController::new();
        let mut s = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[1],
            IterativeScheme::Synchronous,
        );
        let policy = RetryPolicy {
            budget: 1,
            ..RetryPolicy::default()
        };
        let (out, _) = s.reroute_until_resolved(&mut topo.platform, &mut ctl, &policy, &[]);
        assert_eq!(out, RerouteOutcome::Failed);
        assert!(s.record_send(1_000).is_empty());
        assert_eq!(s.traffic(), (0, 0));
    }

    #[test]
    fn relayed_sends_drive_one_netsim_flow_per_leg() {
        use netsim::{run_world, NetEvent, NetWorldEvent, Network, Scheduler, SharingMode, World};
        use p2p_common::DataSize;

        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut ctl = AdaptationController::new();
        let mut s = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[1],
            IterativeScheme::Synchronous,
        );
        let policy = RetryPolicy::default();
        s.reroute(&mut topo.platform, &mut ctl, &policy, &[topo.hosts[5]]);
        let legs = s.record_send(10_000);
        assert_eq!(legs.len(), 2);

        #[derive(Debug, Clone, Copy)]
        struct Ev(NetEvent);
        impl From<NetEvent> for Ev {
            fn from(e: NetEvent) -> Self {
                Ev(e)
            }
        }
        impl NetWorldEvent for Ev {
            fn as_net_event(&self) -> Option<NetEvent> {
                Some(self.0)
            }
        }
        struct Sim {
            net: Network,
            delivered: Vec<(HostId, HostId, u64)>,
        }
        impl World for Sim {
            type Event = Ev;
            fn handle(&mut self, sched: &mut Scheduler<Ev>, ev: Ev) {
                for d in self.net.on_event(sched, ev.0) {
                    self.delivered.push((d.src, d.dst, d.size.bytes()));
                }
            }
        }

        let mut sim = Sim {
            net: Network::new(topo.platform, SharingMode::MaxMinFair),
            delivered: Vec::new(),
        };
        let mut sched = Scheduler::new();
        for (i, leg) in legs.iter().enumerate() {
            sim.net.start_flow(
                &mut sched,
                leg.src,
                leg.dst,
                DataSize::from_bytes(leg.bytes),
                i as u64,
            );
        }
        run_world(&mut sim, &mut sched, None);
        // Both hops of the detour crossed the simulated wire, and the bytes
        // delivered match the bytes the session accounted.
        assert_eq!(sim.delivered.len(), 2);
        let wire: u64 = sim.delivered.iter().map(|&(_, _, b)| b).sum();
        assert_eq!(wire, s.traffic().1);
    }

    #[test]
    fn loopback_session_has_no_handshake_cost() {
        let mut topo = cluster_bordeplage(2, HostSpec::default());
        let mut ctl = AdaptationController::new();
        let s = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[0],
            IterativeScheme::Synchronous,
        );
        assert_eq!(s.handshake_delay(&mut topo.platform), SimDuration::ZERO);
    }
}
