//! Sessions and sockets.
//!
//! A [`Session`] is the data-plane object between two peers: it knows the
//! current network context, the application scheme, and the channel
//! configuration the adaptation controller picked, and it accounts for the
//! traffic it carried. A [`Socket`] is a peer's bundle of sessions, opened
//! lazily towards each remote peer — this is the API surface the P2PDC
//! executor talks to.
//!
//! Reconfiguration is the "self-adaptive" part: when the application switches
//! scheme mid-computation (e.g. synchronous → asynchronous once the residual
//! is small) the socket renegotiates every session, paying one handshake per
//! affected channel.

use crate::adaptation::AdaptationController;
use crate::channel::ChannelConfig;
use crate::context::NetworkContext;
use crate::scheme::IterativeScheme;
use netsim::{Platform, ProtocolCosts};
use p2p_common::{HostId, SimDuration};
use std::collections::HashMap;

/// One configured channel between a local and a remote peer.
#[derive(Debug, Clone)]
pub struct Session {
    /// Local endpoint.
    pub local: HostId,
    /// Remote endpoint.
    pub remote: HostId,
    /// Network context the channel was configured for.
    pub context: NetworkContext,
    /// Scheme the channel was configured for.
    pub scheme: IterativeScheme,
    /// The selected channel configuration.
    pub config: ChannelConfig,
    reconfigurations: u32,
    messages_sent: u64,
    bytes_sent: u64,
}

impl Session {
    /// Open a session: classify the route and ask the controller for a
    /// configuration.
    pub fn open(
        platform: &mut Platform,
        controller: &mut AdaptationController,
        local: HostId,
        remote: HostId,
        scheme: IterativeScheme,
    ) -> Session {
        let context = NetworkContext::classify(platform, local, remote);
        let config = controller.select(scheme, context);
        Session {
            local,
            remote,
            context,
            scheme,
            config,
            reconfigurations: 0,
            messages_sent: 0,
            bytes_sent: 0,
        }
    }

    /// Time to establish (or re-establish) the channel: one route round-trip
    /// per handshake exchange.
    pub fn handshake_delay(&self, platform: &mut Platform) -> SimDuration {
        if self.local == self.remote {
            return SimDuration::ZERO;
        }
        let route = platform.route(self.local, self.remote);
        route
            .latency
            .saturating_mul(2 * self.config.handshake_rtts() as u64)
    }

    /// Switch the session to a new scheme. Returns `true` (and bumps the
    /// reconfiguration counter) if the channel configuration actually changed.
    pub fn reconfigure(
        &mut self,
        controller: &mut AdaptationController,
        scheme: IterativeScheme,
    ) -> bool {
        self.scheme = scheme;
        let new_config = controller.select(scheme, self.context);
        if new_config != self.config {
            self.config = new_config;
            self.reconfigurations += 1;
            true
        } else {
            false
        }
    }

    /// Account for one application message of `payload_bytes`.
    pub fn record_send(&mut self, payload_bytes: u64) {
        self.messages_sent += 1;
        self.bytes_sent += payload_bytes + self.config.header_bytes();
    }

    /// Per-message costs of the current configuration.
    pub fn costs(&self) -> ProtocolCosts {
        self.config.protocol_costs()
    }

    /// Number of times the channel was reconfigured.
    pub fn reconfigurations(&self) -> u32 {
        self.reconfigurations
    }

    /// Messages and wire bytes sent so far.
    pub fn traffic(&self) -> (u64, u64) {
        (self.messages_sent, self.bytes_sent)
    }
}

/// Aggregate statistics over a socket's sessions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Open sessions.
    pub sessions: usize,
    /// Application messages sent.
    pub messages_sent: u64,
    /// Wire bytes sent (payload + headers).
    pub bytes_sent: u64,
    /// Total channel reconfigurations.
    pub reconfigurations: u64,
}

/// A peer's bundle of sessions.
#[derive(Debug)]
pub struct Socket {
    local: HostId,
    scheme: IterativeScheme,
    controller: AdaptationController,
    sessions: HashMap<HostId, Session>,
}

impl Socket {
    /// Create a socket for a peer running the given scheme.
    pub fn new(local: HostId, scheme: IterativeScheme) -> Self {
        Socket {
            local,
            scheme,
            controller: AdaptationController::new(),
            sessions: HashMap::new(),
        }
    }

    /// Local endpoint.
    pub fn local(&self) -> HostId {
        self.local
    }

    /// Current scheme.
    pub fn scheme(&self) -> IterativeScheme {
        self.scheme
    }

    /// Get (opening lazily) the session towards `remote`.
    pub fn session(&mut self, platform: &mut Platform, remote: HostId) -> &mut Session {
        if !self.sessions.contains_key(&remote) {
            let s = Session::open(
                platform,
                &mut self.controller,
                self.local,
                remote,
                self.scheme,
            );
            self.sessions.insert(remote, s);
        }
        self.sessions.get_mut(&remote).expect("just inserted")
    }

    /// Switch every open session to a new scheme. Returns how many channels
    /// actually changed configuration.
    pub fn set_scheme(&mut self, scheme: IterativeScheme) -> usize {
        self.scheme = scheme;
        let mut changed = 0;
        for s in self.sessions.values_mut() {
            if s.reconfigure(&mut self.controller, scheme) {
                changed += 1;
            }
        }
        changed
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SessionStats {
        let mut st = SessionStats {
            sessions: self.sessions.len(),
            ..SessionStats::default()
        };
        for s in self.sessions.values() {
            let (m, b) = s.traffic();
            st.messages_sent += m;
            st.bytes_sent += b;
            st.reconfigurations += s.reconfigurations() as u64;
        }
        st
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{cluster_bordeplage, daisy_xdsl, HostSpec};

    #[test]
    fn sessions_classify_their_context_on_open() {
        let mut cluster = cluster_bordeplage(4, HostSpec::default());
        let mut ctl = AdaptationController::new();
        let s = Session::open(
            &mut cluster.platform,
            &mut ctl,
            cluster.hosts[0],
            cluster.hosts[1],
            IterativeScheme::Synchronous,
        );
        assert_eq!(s.context, NetworkContext::IntraCluster);
        assert_eq!(ctl.decisions(), 1);
    }

    #[test]
    fn handshake_delay_scales_with_route_latency() {
        let mut cluster = cluster_bordeplage(4, HostSpec::default());
        let mut xdsl = daisy_xdsl(16, HostSpec::default(), 1);
        let mut ctl = AdaptationController::new();
        let near = Session::open(
            &mut cluster.platform,
            &mut ctl,
            cluster.hosts[0],
            cluster.hosts[1],
            IterativeScheme::Synchronous,
        );
        let far = Session::open(
            &mut xdsl.platform,
            &mut ctl,
            xdsl.hosts[0],
            xdsl.hosts[10],
            IterativeScheme::Synchronous,
        );
        assert!(
            far.handshake_delay(&mut xdsl.platform) > near.handshake_delay(&mut cluster.platform)
        );
    }

    #[test]
    fn socket_opens_sessions_lazily_and_caches_them() {
        let mut topo = cluster_bordeplage(4, HostSpec::default());
        let mut sock = Socket::new(topo.hosts[0], IterativeScheme::Synchronous);
        let cfg1 = sock
            .session(&mut topo.platform, topo.hosts[1])
            .config
            .clone();
        sock.session(&mut topo.platform, topo.hosts[1])
            .record_send(100);
        sock.session(&mut topo.platform, topo.hosts[2])
            .record_send(200);
        let cfg2 = sock
            .session(&mut topo.platform, topo.hosts[1])
            .config
            .clone();
        assert_eq!(cfg1, cfg2);
        let st = sock.stats();
        assert_eq!(st.sessions, 2);
        assert_eq!(st.messages_sent, 2);
        assert!(st.bytes_sent > 300, "headers must be accounted for");
    }

    #[test]
    fn scheme_switch_reconfigures_channels() {
        let mut topo = daisy_xdsl(8, HostSpec::default(), 3);
        let mut sock = Socket::new(topo.hosts[0], IterativeScheme::Synchronous);
        sock.session(&mut topo.platform, topo.hosts[1]);
        sock.session(&mut topo.platform, topo.hosts[2]);
        let changed = sock.set_scheme(IterativeScheme::Asynchronous);
        assert_eq!(changed, 2);
        assert_eq!(sock.stats().reconfigurations, 2);
        // Switching to the same scheme again changes nothing.
        assert_eq!(sock.set_scheme(IterativeScheme::Asynchronous), 0);
    }

    #[test]
    fn loopback_session_has_no_handshake_cost() {
        let mut topo = cluster_bordeplage(2, HostSpec::default());
        let mut ctl = AdaptationController::new();
        let s = Session::open(
            &mut topo.platform,
            &mut ctl,
            topo.hosts[0],
            topo.hosts[0],
            IterativeScheme::Synchronous,
        );
        assert_eq!(s.handshake_delay(&mut topo.platform), SimDuration::ZERO);
    }
}
