//! Network-context classification.
//!
//! P2PSAP adapts the channel configuration to "elements of context like
//! network topology at transport level". The context of a peer pair is
//! derived from the route between their hosts: a fat, sub-millisecond path is
//! an intra-cluster link; a 100 Mbps-class path with around a millisecond of
//! latency is a LAN; anything slower or farther is treated as WAN/xDSL.

use netsim::{Platform, Route};
use p2p_common::{Bandwidth, HostId, SimDuration};
use serde::{Deserialize, Serialize};

/// The transport-level context of a peer pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkContext {
    /// Both peers sit inside the same cluster (Gbps-class, ≪ 1 ms).
    IntraCluster,
    /// Campus / corporate LAN (100 Mbps-class, ≈ 1 ms).
    Lan,
    /// Wide-area or xDSL access (Mbps-class and/or ≥ a few ms).
    Wan,
}

impl NetworkContext {
    /// Classification thresholds. A route is:
    /// * `IntraCluster` if its bottleneck is at least 500 Mbps **and** its
    ///   one-way latency is below 1 ms;
    /// * `Wan` if its bottleneck is below 50 Mbps **or** its latency is at
    ///   least 5 ms;
    /// * `Lan` otherwise.
    pub fn classify_route(route: &Route) -> NetworkContext {
        let bw = route.bottleneck;
        let lat = route.latency;
        if bw >= Bandwidth::from_mbps(500.0) && lat < SimDuration::from_millis(1) {
            NetworkContext::IntraCluster
        } else if bw < Bandwidth::from_mbps(50.0) || lat >= SimDuration::from_millis(5) {
            NetworkContext::Wan
        } else {
            NetworkContext::Lan
        }
    }

    /// Classify the context between two hosts of a platform.
    pub fn classify(platform: &mut Platform, a: HostId, b: HostId) -> NetworkContext {
        if a == b {
            return NetworkContext::IntraCluster;
        }
        let route = platform.route(a, b);
        Self::classify_route(&route)
    }

    /// Short label used in diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            NetworkContext::IntraCluster => "intra-cluster",
            NetworkContext::Lan => "LAN",
            NetworkContext::Wan => "WAN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{cluster_bordeplage, daisy_xdsl, lan, HostSpec};

    #[test]
    fn cluster_routes_are_intra_cluster() {
        let mut topo = cluster_bordeplage(8, HostSpec::default());
        let ctx = NetworkContext::classify(&mut topo.platform, topo.hosts[0], topo.hosts[5]);
        assert_eq!(ctx, NetworkContext::IntraCluster);
    }

    #[test]
    fn lan_routes_are_lan() {
        let mut topo = lan(8, HostSpec::default());
        let ctx = NetworkContext::classify(&mut topo.platform, topo.hosts[0], topo.hosts[1]);
        assert_eq!(ctx, NetworkContext::Lan);
    }

    #[test]
    fn xdsl_routes_are_wan() {
        let mut topo = daisy_xdsl(16, HostSpec::default(), 1);
        let ctx = NetworkContext::classify(&mut topo.platform, topo.hosts[0], topo.hosts[10]);
        assert_eq!(ctx, NetworkContext::Wan);
    }

    #[test]
    fn same_host_is_intra_cluster() {
        let mut topo = lan(4, HostSpec::default());
        let ctx = NetworkContext::classify(&mut topo.platform, topo.hosts[2], topo.hosts[2]);
        assert_eq!(ctx, NetworkContext::IntraCluster);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            NetworkContext::IntraCluster.label(),
            NetworkContext::Lan.label(),
            NetworkContext::Wan.label(),
        ];
        let set: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
