//! Channel configurations and their costs.
//!
//! A P2PSAP channel is assembled from micro-protocols stacked over a base
//! transport. The paper's key point is that the *internal mechanisms* of the
//! transport can be changed per channel ("this approach is different from
//! MPICH-Madeleine in allowing the modification of internal transport protocol
//! mechanism in addition to switch between networks"), so the configuration is
//! an explicit, inspectable value here.
//!
//! For performance prediction what matters is the cost of a configuration:
//! bytes added to every message, CPU time spent per message at the sender and
//! the receiver, and the number of round-trips needed to (re)establish the
//! channel. The constants below are representative user-space protocol costs
//! on the paper's 3 GHz Xeon nodes; they are deliberately exposed as plain
//! data so the ablation benches can sweep them.

use netsim::ProtocolCosts;
use p2p_common::SimDuration;
use serde::{Deserialize, Serialize};

/// The base transport a channel is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransportKind {
    /// Connection-oriented, reliable, ordered (TCP-like).
    TcpLike,
    /// Congestion-controlled but unreliable datagrams (DCCP-like).
    DccpLike,
    /// Plain datagrams (UDP-like).
    UdpLike,
}

/// Optional mechanisms stacked on the base transport.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MicroProtocol {
    /// Acknowledgements + retransmission.
    Reliability,
    /// FIFO ordering of messages on the channel.
    Ordering,
    /// Window-based congestion control.
    CongestionControl,
    /// Replace queued outgoing updates by fresher ones (asynchronous schemes).
    StaleDrop,
}

/// A fully specified channel configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Base transport.
    pub transport: TransportKind,
    /// Stacked micro-protocols (order is irrelevant to the cost model).
    pub stack: Vec<MicroProtocol>,
}

/// P2PSAP's own session header, present on every message of every
/// configuration.
const SAP_HEADER_BYTES: u64 = 24;
/// Base per-message CPU cost of the user-space protocol engine.
const BASE_CPU_US: u64 = 30;

impl ChannelConfig {
    /// A configuration with the given transport and no extra micro-protocols.
    pub fn bare(transport: TransportKind) -> Self {
        ChannelConfig {
            transport,
            stack: Vec::new(),
        }
    }

    /// Add a micro-protocol (idempotent).
    pub fn with(mut self, mp: MicroProtocol) -> Self {
        if !self.stack.contains(&mp) {
            self.stack.push(mp);
        }
        self
    }

    /// Does the stack include a given micro-protocol?
    pub fn has(&self, mp: MicroProtocol) -> bool {
        self.stack.contains(&mp)
    }

    /// Wire overhead added to every message (transport header + P2PSAP
    /// session header + per-micro-protocol fields).
    pub fn header_bytes(&self) -> u64 {
        let transport = match self.transport {
            TransportKind::TcpLike => 40,  // IP + TCP
            TransportKind::DccpLike => 36, // IP + DCCP
            TransportKind::UdpLike => 28,  // IP + UDP
        };
        let stack: u64 = self
            .stack
            .iter()
            .map(|mp| match mp {
                MicroProtocol::Reliability => 8,
                MicroProtocol::Ordering => 4,
                MicroProtocol::CongestionControl => 4,
                MicroProtocol::StaleDrop => 4,
            })
            .sum();
        transport + SAP_HEADER_BYTES + stack
    }

    /// CPU time spent at the sender for each message.
    pub fn send_cpu(&self) -> SimDuration {
        let mut us = BASE_CPU_US;
        if self.has(MicroProtocol::Reliability) {
            us += 15;
        }
        if self.has(MicroProtocol::CongestionControl) {
            us += 10;
        }
        if self.has(MicroProtocol::Ordering) {
            us += 5;
        }
        SimDuration::from_micros(us)
    }

    /// CPU time spent at the receiver for each message.
    pub fn recv_cpu(&self) -> SimDuration {
        let mut us = BASE_CPU_US;
        if self.has(MicroProtocol::Reliability) {
            us += 20; // ack generation
        }
        if self.has(MicroProtocol::Ordering) {
            us += 5;
        }
        SimDuration::from_micros(us)
    }

    /// Round-trips needed to open (or reconfigure) the channel.
    pub fn handshake_rtts(&self) -> u32 {
        match self.transport {
            TransportKind::TcpLike => 2, // connect + P2PSAP session negotiation
            TransportKind::DccpLike => 2,
            TransportKind::UdpLike => 1, // session negotiation only
        }
    }

    /// May the channel drop an outgoing update when a fresher one is queued?
    pub fn drops_stale_updates(&self) -> bool {
        self.has(MicroProtocol::StaleDrop)
    }

    /// The per-message costs in the form the netsim replay and the P2PDC
    /// executor consume.
    pub fn protocol_costs(&self) -> ProtocolCosts {
        ProtocolCosts {
            header_bytes: self.header_bytes(),
            send_cpu: self.send_cpu(),
            recv_cpu: self.recv_cpu(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_grows_with_the_stack() {
        let bare = ChannelConfig::bare(TransportKind::UdpLike);
        let full = ChannelConfig::bare(TransportKind::TcpLike)
            .with(MicroProtocol::Reliability)
            .with(MicroProtocol::Ordering)
            .with(MicroProtocol::CongestionControl);
        assert!(full.header_bytes() > bare.header_bytes());
        assert_eq!(bare.header_bytes(), 28 + 24);
        assert_eq!(full.header_bytes(), 40 + 24 + 8 + 4 + 4);
    }

    #[test]
    fn with_is_idempotent() {
        let c = ChannelConfig::bare(TransportKind::TcpLike)
            .with(MicroProtocol::Reliability)
            .with(MicroProtocol::Reliability);
        assert_eq!(c.stack.len(), 1);
        assert!(c.has(MicroProtocol::Reliability));
        assert!(!c.has(MicroProtocol::StaleDrop));
    }

    #[test]
    fn cpu_costs_reflect_micro_protocols() {
        let light = ChannelConfig::bare(TransportKind::UdpLike);
        let heavy = ChannelConfig::bare(TransportKind::TcpLike)
            .with(MicroProtocol::Reliability)
            .with(MicroProtocol::Ordering)
            .with(MicroProtocol::CongestionControl);
        assert!(heavy.send_cpu() > light.send_cpu());
        assert!(heavy.recv_cpu() > light.recv_cpu());
        assert_eq!(light.send_cpu(), SimDuration::from_micros(30));
        assert_eq!(heavy.send_cpu(), SimDuration::from_micros(60));
        assert_eq!(heavy.recv_cpu(), SimDuration::from_micros(55));
    }

    #[test]
    fn handshake_counts() {
        assert_eq!(
            ChannelConfig::bare(TransportKind::TcpLike).handshake_rtts(),
            2
        );
        assert_eq!(
            ChannelConfig::bare(TransportKind::UdpLike).handshake_rtts(),
            1
        );
    }

    #[test]
    fn protocol_costs_round_trip() {
        let c = ChannelConfig::bare(TransportKind::TcpLike).with(MicroProtocol::Reliability);
        let costs = c.protocol_costs();
        assert_eq!(costs.header_bytes, c.header_bytes());
        assert_eq!(costs.send_cpu, c.send_cpu());
        assert_eq!(costs.recv_cpu, c.recv_cpu());
    }

    #[test]
    fn stale_drop_flag() {
        let c = ChannelConfig::bare(TransportKind::UdpLike).with(MicroProtocol::StaleDrop);
        assert!(c.drops_stale_updates());
        assert!(!ChannelConfig::bare(TransportKind::UdpLike).drops_stale_updates());
    }
}
