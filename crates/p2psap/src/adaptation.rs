//! The self-adaptation controller.
//!
//! The heart of P2PSAP: given the application's iterative scheme and the
//! network context of a peer pair, pick the channel configuration. The
//! decision table follows the P2PSAP paper (El Baz & Nguyen, PDP'10):
//!
//! | scheme \ context | intra-cluster              | LAN                         | WAN / xDSL                      |
//! |------------------|----------------------------|-----------------------------|---------------------------------|
//! | synchronous      | TCP-like, no cong. control | TCP-like + cong. control    | TCP-like + cong. control        |
//! | asynchronous     | UDP-like (bare)            | DCCP-like + stale-drop      | DCCP-like + stale-drop          |
//!
//! Synchronous schemes always need reliability and ordering; inside a cluster
//! the congestion-control machinery is pure overhead and is removed.
//! Asynchronous schemes drop reliability altogether and allow the channel to
//! replace queued updates with fresher ones; over shared links they keep
//! congestion control to remain TCP-friendly.

use crate::channel::{ChannelConfig, MicroProtocol, TransportKind};
use crate::context::NetworkContext;
use crate::scheme::IterativeScheme;
use serde::{Deserialize, Serialize};

/// Chooses and re-chooses channel configurations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdaptationController {
    decisions: u64,
}

impl AdaptationController {
    /// A fresh controller.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of configuration decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The P2PSAP decision table.
    pub fn select(&mut self, scheme: IterativeScheme, context: NetworkContext) -> ChannelConfig {
        self.decisions += 1;
        Self::decide(scheme, context)
    }

    /// Pure decision function (no bookkeeping) — handy in tests and docs.
    pub fn decide(scheme: IterativeScheme, context: NetworkContext) -> ChannelConfig {
        match (scheme, context) {
            (IterativeScheme::Synchronous, NetworkContext::IntraCluster) => {
                ChannelConfig::bare(TransportKind::TcpLike)
                    .with(MicroProtocol::Reliability)
                    .with(MicroProtocol::Ordering)
            }
            (IterativeScheme::Synchronous, _) => ChannelConfig::bare(TransportKind::TcpLike)
                .with(MicroProtocol::Reliability)
                .with(MicroProtocol::Ordering)
                .with(MicroProtocol::CongestionControl),
            (IterativeScheme::Asynchronous, NetworkContext::IntraCluster) => {
                ChannelConfig::bare(TransportKind::UdpLike)
            }
            (IterativeScheme::Asynchronous, _) => ChannelConfig::bare(TransportKind::DccpLike)
                .with(MicroProtocol::CongestionControl)
                .with(MicroProtocol::StaleDrop),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_configurations_are_reliable_everywhere() {
        for ctx in [
            NetworkContext::IntraCluster,
            NetworkContext::Lan,
            NetworkContext::Wan,
        ] {
            let c = AdaptationController::decide(IterativeScheme::Synchronous, ctx);
            assert!(
                c.has(MicroProtocol::Reliability),
                "sync over {ctx:?} must be reliable"
            );
            assert!(c.has(MicroProtocol::Ordering));
            assert_eq!(c.transport, TransportKind::TcpLike);
        }
    }

    #[test]
    fn congestion_control_is_dropped_inside_a_cluster() {
        let intra = AdaptationController::decide(
            IterativeScheme::Synchronous,
            NetworkContext::IntraCluster,
        );
        let wan = AdaptationController::decide(IterativeScheme::Synchronous, NetworkContext::Wan);
        assert!(!intra.has(MicroProtocol::CongestionControl));
        assert!(wan.has(MicroProtocol::CongestionControl));
        assert!(
            intra.send_cpu() < wan.send_cpu(),
            "lighter stack must be cheaper"
        );
    }

    #[test]
    fn asynchronous_configurations_shed_reliability() {
        for ctx in [
            NetworkContext::IntraCluster,
            NetworkContext::Lan,
            NetworkContext::Wan,
        ] {
            let c = AdaptationController::decide(IterativeScheme::Asynchronous, ctx);
            assert!(!c.has(MicroProtocol::Reliability));
        }
        let wan = AdaptationController::decide(IterativeScheme::Asynchronous, NetworkContext::Wan);
        assert!(wan.drops_stale_updates());
        assert_eq!(wan.transport, TransportKind::DccpLike);
        let intra = AdaptationController::decide(
            IterativeScheme::Asynchronous,
            NetworkContext::IntraCluster,
        );
        assert_eq!(intra.transport, TransportKind::UdpLike);
    }

    #[test]
    fn async_channels_are_cheaper_than_sync_channels() {
        for ctx in [NetworkContext::Lan, NetworkContext::Wan] {
            let sync = AdaptationController::decide(IterativeScheme::Synchronous, ctx);
            let async_ = AdaptationController::decide(IterativeScheme::Asynchronous, ctx);
            assert!(async_.recv_cpu() < sync.recv_cpu());
            assert!(async_.header_bytes() < sync.header_bytes());
        }
    }

    #[test]
    fn controller_counts_decisions() {
        let mut ctl = AdaptationController::new();
        assert_eq!(ctl.decisions(), 0);
        ctl.select(IterativeScheme::Synchronous, NetworkContext::Lan);
        ctl.select(IterativeScheme::Asynchronous, NetworkContext::Wan);
        assert_eq!(ctl.decisions(), 2);
    }
}
