//! Application-level computation schemes.
//!
//! Distributed iterative methods come in two flavours that place very
//! different demands on the transport (paper §I and the P2PSAP paper):
//!
//! * **Synchronous** iterations: every peer must receive its neighbours'
//!   iteration *k* values before starting iteration *k+1*. Updates must be
//!   delivered reliably and in order; the scheme tolerates no loss.
//! * **Asynchronous** iterations: peers keep iterating with whatever values
//!   they last received. A lost or late update merely delays convergence, so
//!   reliability (and its cost) can be dropped, and a *fresher* update makes
//!   any older in-flight one worthless.

use serde::{Deserialize, Serialize};

/// The iterative scheme the application announces to P2PSAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IterativeScheme {
    /// Lock-step iterations; requires reliable, ordered delivery.
    Synchronous,
    /// Chaotic/asynchronous iterations; tolerates loss and reordering.
    Asynchronous,
}

impl IterativeScheme {
    /// Does this scheme require every update to be delivered?
    pub fn requires_reliability(self) -> bool {
        matches!(self, IterativeScheme::Synchronous)
    }

    /// May the transport silently replace a queued update with a newer one?
    pub fn allows_stale_drop(self) -> bool {
        matches!(self, IterativeScheme::Asynchronous)
    }

    /// Label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IterativeScheme::Synchronous => "synchronous",
            IterativeScheme::Asynchronous => "asynchronous",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_needs_reliability() {
        assert!(IterativeScheme::Synchronous.requires_reliability());
        assert!(!IterativeScheme::Synchronous.allows_stale_drop());
    }

    #[test]
    fn asynchronous_tolerates_loss() {
        assert!(!IterativeScheme::Asynchronous.requires_reliability());
        assert!(IterativeScheme::Asynchronous.allows_stale_drop());
    }

    #[test]
    fn labels() {
        assert_eq!(IterativeScheme::Synchronous.label(), "synchronous");
        assert_eq!(IterativeScheme::Asynchronous.label(), "asynchronous");
    }
}
