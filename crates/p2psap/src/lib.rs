//! # p2psap — the self-adaptive communication protocol (model)
//!
//! P2PSAP (El Baz & Nguyen, PDP'10) is the transport layer of the P2PDC
//! environment: it "chooses dynamically appropriate communication mode between
//! any peers according to decisions taken at application level like schemes of
//! computation, e.g. synchronous or asynchronous iterative schemes and
//! elements of context like network topology at transport level" (paper §I).
//!
//! This crate models that behaviour at the level the performance study needs:
//!
//! * [`context`] — classification of a peer pair's network context
//!   (intra-cluster / LAN / WAN-xDSL) from the route characteristics.
//! * [`scheme`] — the application-level hint: synchronous or asynchronous
//!   iterative scheme.
//! * [`channel`] — channel configurations assembled from micro-protocols
//!   (reliability, ordering, congestion control); each configuration has a
//!   measurable cost: header bytes, per-message send/receive CPU time,
//!   connection handshake round-trips, and whether stale asynchronous updates
//!   may be dropped.
//! * [`adaptation`] — the controller implementing the P2PSAP decision table
//!   (scheme × context → channel configuration), plus dynamic reconfiguration
//!   when the context or the scheme changes mid-computation.
//! * [`session`] — per-peer-pair sessions: the data/control plane object the
//!   P2PDC executor opens, with reconfiguration accounting.
//!
//! The costs exposed here feed both the P2PDC reference executor and the
//! dPerf trace replay, so the protocol's influence on predicted and reference
//! times is identical — exactly the property dPerf relies on.

#![warn(missing_docs)]

pub mod adaptation;
pub mod channel;
pub mod context;
pub mod scheme;
pub mod session;

pub use adaptation::AdaptationController;
pub use channel::{ChannelConfig, MicroProtocol, TransportKind};
pub use context::NetworkContext;
pub use scheme::IterativeScheme;
pub use session::{
    RerouteOutcome, RetryPolicy, SendLeg, Session, SessionPath, SessionStats, Socket,
};
