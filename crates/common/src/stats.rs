//! Online statistics and histograms.
//!
//! Used by the tracker statistics reports (connection/disconnection time,
//! resources donated/consumed — paper §III-A.1), by the benchmark harness to
//! summarize repeated runs, and by the network simulator's link-utilization
//! counters.

use serde::{Deserialize, Serialize};

/// Numerically stable online mean / variance (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Add every value of an iterator.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, it: I) {
        for x in it {
            self.record(x);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width histogram over `[lo, hi)` with linear buckets; values outside
/// the range land in saturated edge buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `nbuckets` equal-width buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(nbuckets > 0, "histogram needs at least one bucket");
        Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            total: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        let n = self.buckets.len();
        let idx = if x < self.lo {
            0
        } else if x >= self.hi {
            n - 1
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            ((frac * n as f64) as usize).min(n - 1)
        };
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Total number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q ∈ [0,1]` (midpoint of the bucket containing it).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        s.record_all([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 3.0).collect();
        let mut whole = OnlineStats::new();
        whole.record_all(data.iter().copied());
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        left.record_all(data[..37].iter().copied());
        right.record_all(data[37..].iter().copied());
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = OnlineStats::new();
        s.record(3.0);
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..100 {
            h.record(i as f64 * 0.1);
        }
        assert_eq!(h.total(), 100);
        assert!(h.buckets().iter().all(|&c| c == 10));
        let median = h.quantile(0.5).unwrap();
        assert!((median - 4.5).abs() <= 0.5 + 1e-9);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn histogram_saturates_at_edges() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(42.0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[3], 1);
    }
}
