//! Peer resource descriptors.
//!
//! In a P2PDC zone, "peers publish their information regarding processor,
//! memory, hard disk and current usage state to tracker of zone and wait for
//! works" (paper §III-A.1). [`PeerResources`] is that published record, and
//! [`ResourceRequirements`] is the filter a submitter attaches to its peer
//! request message (§III-B).

use serde::{Deserialize, Serialize};

/// Current usage state of a peer, as reported in its periodic state update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UsageState {
    /// Idle and available for a computation.
    Free,
    /// Reserved for a computation (cannot be reserved for another one).
    Busy,
    /// The machine's owner is using it interactively; unsuitable for work.
    OwnerActive,
}

impl UsageState {
    /// True if a tracker may hand this peer to a submitter.
    pub fn is_available(self) -> bool {
        matches!(self, UsageState::Free)
    }
}

/// The resource record a peer publishes to the tracker of its zone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeerResources {
    /// Effective processor speed in floating-point operations per second.
    /// (The paper's testbed nodes are Intel Xeon EM64T 3 GHz machines.)
    pub cpu_flops: f64,
    /// Installed memory in megabytes.
    pub memory_mb: u64,
    /// Free hard-disk space in gigabytes.
    pub disk_gb: u64,
    /// Current usage state.
    pub usage: UsageState,
}

impl PeerResources {
    /// The node type used throughout the paper's evaluation: Intel Xeon EM64T
    /// 3 GHz, 1 MB L2, 2 GB memory (Bordeplage cluster, §IV-A.3). The
    /// effective flop rate is the calibrated rate of the obstacle-problem
    /// kernel at `-O3`, not the peak rate (see `dperf::machine`).
    pub fn xeon_em64t() -> Self {
        PeerResources {
            cpu_flops: 1.0e9,
            memory_mb: 2048,
            disk_gb: 80,
            usage: UsageState::Free,
        }
    }

    /// A deliberately weak machine, handy in tests of requirement filtering.
    pub fn weak() -> Self {
        PeerResources {
            cpu_flops: 1.0e8,
            memory_mb: 256,
            disk_gb: 4,
            usage: UsageState::Free,
        }
    }

    /// Return a copy marked with the given usage state.
    pub fn with_usage(mut self, usage: UsageState) -> Self {
        self.usage = usage;
        self
    }

    /// Does this peer satisfy a submitter's requirements and is it available?
    pub fn satisfies(&self, req: &ResourceRequirements) -> bool {
        self.usage.is_available()
            && self.cpu_flops >= req.min_cpu_flops
            && self.memory_mb >= req.min_memory_mb
            && self.disk_gb >= req.min_disk_gb
    }
}

/// Requirements attached to a submitter's peer request (paper §III-B: "this
/// message contains information regarding computation like task's description,
/// number of peers needed initially, peers requirements").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequirements {
    /// Minimum acceptable processor speed, flop/s.
    pub min_cpu_flops: f64,
    /// Minimum installed memory, MB.
    pub min_memory_mb: u64,
    /// Minimum free disk, GB.
    pub min_disk_gb: u64,
}

impl ResourceRequirements {
    /// No requirements at all (any free peer qualifies).
    pub fn none() -> Self {
        ResourceRequirements {
            min_cpu_flops: 0.0,
            min_memory_mb: 0,
            min_disk_gb: 0,
        }
    }

    /// The requirements used by the obstacle-problem experiments: a machine at
    /// least as capable as a Bordeplage node.
    pub fn cluster_class() -> Self {
        ResourceRequirements {
            min_cpu_flops: 0.9e9,
            min_memory_mb: 1024,
            min_disk_gb: 10,
        }
    }
}

impl Default for ResourceRequirements {
    fn default() -> Self {
        ResourceRequirements::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xeon_satisfies_cluster_class() {
        let peer = PeerResources::xeon_em64t();
        assert!(peer.satisfies(&ResourceRequirements::cluster_class()));
        assert!(peer.satisfies(&ResourceRequirements::none()));
    }

    #[test]
    fn weak_peer_fails_cluster_class() {
        let peer = PeerResources::weak();
        assert!(!peer.satisfies(&ResourceRequirements::cluster_class()));
        assert!(peer.satisfies(&ResourceRequirements::none()));
    }

    #[test]
    fn busy_peer_is_never_eligible() {
        let peer = PeerResources::xeon_em64t().with_usage(UsageState::Busy);
        assert!(!peer.satisfies(&ResourceRequirements::none()));
        let peer = PeerResources::xeon_em64t().with_usage(UsageState::OwnerActive);
        assert!(!peer.satisfies(&ResourceRequirements::none()));
    }

    #[test]
    fn usage_state_availability() {
        assert!(UsageState::Free.is_available());
        assert!(!UsageState::Busy.is_available());
        assert!(!UsageState::OwnerActive.is_available());
    }
}
