//! Error types shared across the workspace.

use std::fmt;

/// Errors produced by the shared foundational types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommonError {
    /// An IPv4 address string could not be parsed.
    ParseIp(String),
    /// A configuration value was out of its legal range.
    InvalidConfig(String),
}

impl fmt::Display for CommonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommonError::ParseIp(s) => write!(f, "invalid IPv4 address: {s:?}"),
            CommonError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
        }
    }
}

impl std::error::Error for CommonError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_usefully() {
        let e = CommonError::ParseIp("1.2.3".into());
        assert!(e.to_string().contains("1.2.3"));
        let e = CommonError::InvalidConfig("peer count must be > 0".into());
        assert!(e.to_string().contains("peer count"));
    }
}
