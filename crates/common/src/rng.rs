//! Deterministic random number generation.
//!
//! Every randomized component of the reproduction (the 5–10 Mbps random xDSL
//! last-mile bandwidths of Fig. 8, peer churn, peer IP assignment, …) draws
//! from a [`DetRng`] seeded explicitly, so that a given seed regenerates a
//! figure exactly. `DetRng` can be forked into independent substreams so that
//! adding randomness to one module never perturbs another.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::{ChaCha8Rng, ChaChaState};
use serde::{DeError, Deserialize, Serialize, Value};

/// A deterministic, forkable pseudo-random generator (ChaCha8).
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha8Rng,
}

impl DetRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Derive an independent generator identified by `label`. Forking with the
    /// same label twice yields identical streams; different labels yield
    /// (statistically) independent streams.
    pub fn fork(&self, label: u64) -> DetRng {
        let mut seed = [0u8; 32];
        let base = self.inner.get_seed();
        seed.copy_from_slice(&base);
        // Mix the label into the seed words with a splitmix-style finalizer.
        let mut x = label.wrapping_add(0x9E37_79B9_7F4A_7C15);
        for chunk in seed.chunks_mut(8) {
            x ^= x >> 30;
            x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            for (i, b) in chunk.iter_mut().enumerate() {
                *b ^= (x >> (8 * i)) as u8;
            }
        }
        DetRng {
            inner: ChaCha8Rng::from_seed(seed),
        }
    }

    /// A uniformly random `u32`.
    pub fn gen_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    /// A uniformly random `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A uniform value in `range`.
    pub fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// An exponentially distributed value with the given mean (used by the
    /// churn injector for inter-arrival and session times).
    pub fn gen_exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean of an exponential must be positive");
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            let i = self.inner.gen_range(0..slice.len());
            Some(&slice[i])
        }
    }
}

/// Serialization captures the **exact stream position** (seed, ChaCha block
/// counter, word index), not just the seed: a restored generator continues
/// the word stream precisely where the original left off, which is what lets
/// a simulation checkpoint resume bit-identically mid-scenario.
///
/// ```
/// use p2p_common::DetRng;
/// use serde::{Deserialize, Serialize};
///
/// let mut rng = DetRng::new(7);
/// for _ in 0..5 {
///     rng.gen_u64(); // advance mid-block
/// }
/// let snapshot = rng.to_value();
/// let mut restored = DetRng::from_value(&snapshot).unwrap();
/// assert_eq!(rng.gen_u64(), restored.gen_u64());
/// ```
impl Serialize for DetRng {
    fn to_value(&self) -> Value {
        let state = self.inner.state();
        Value::Object(vec![
            ("seed".to_owned(), state.seed.to_value()),
            ("counter".to_owned(), state.counter.to_value()),
            ("index".to_owned(), state.index.to_value()),
        ])
    }
}

impl Deserialize for DetRng {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let fields = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", "DetRng", v))?;
        let seed_bytes: Vec<u8> = serde::field(fields, "seed", "DetRng")?;
        let seed: [u8; 32] = seed_bytes
            .try_into()
            .map_err(|_| DeError::msg("DetRng.seed: expected exactly 32 bytes"))?;
        let counter: u64 = serde::field(fields, "counter", "DetRng")?;
        let index: usize = serde::field(fields, "index", "DetRng")?;
        if index > 16 {
            return Err(DeError::msg(format!(
                "DetRng.index: {index} out of range (0..=16)"
            )));
        }
        Ok(DetRng {
            inner: ChaCha8Rng::from_state(ChaChaState {
                seed,
                counter,
                index,
            }),
        })
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_reproducible_and_independent() {
        let root = DetRng::new(7);
        let mut f1a = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        let s1a: Vec<u64> = (0..8).map(|_| f1a.gen_u64()).collect();
        let s1b: Vec<u64> = (0..8).map(|_| f1b.gen_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| f2.gen_u64()).collect();
        assert_eq!(s1a, s1b, "same label must give the same stream");
        assert_ne!(s1a, s2, "different labels must give different streams");
    }

    #[test]
    fn serde_round_trip_preserves_the_stream_position() {
        let mut rng = DetRng::new(0xDEAD_BEEF);
        // Land mid-block (gen_u64 consumes two words per call).
        for _ in 0..11 {
            rng.gen_u64();
        }
        let mut restored = DetRng::from_value(&rng.to_value()).unwrap();
        for i in 0..200 {
            assert_eq!(rng.gen_u64(), restored.gen_u64(), "diverged at draw {i}");
        }
        // A wrong-sized seed is rejected, not truncated.
        let bad = Value::Object(vec![
            ("seed".to_owned(), vec![0u8; 31].to_value()),
            ("counter".to_owned(), 0u64.to_value()),
            ("index".to_owned(), 16usize.to_value()),
        ]);
        assert!(DetRng::from_value(&bad).is_err());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(5.0..10.0);
            assert!((5.0..10.0).contains(&v));
            let n: u32 = rng.gen_range(0..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn exponential_has_roughly_the_right_mean() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let mean = 3.0;
        let sum: f64 = (0..n).map(|_| rng.gen_exponential(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < 0.15,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn shuffle_and_choose_are_permutations() {
        let mut rng = DetRng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(rng.choose(&v).is_some());
        let empty: [u32; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }
}
