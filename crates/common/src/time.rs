//! Simulated time.
//!
//! The paper's traces carry computation time "measured using hardware counters
//! and expressed in nanoseconds" (§III-D.2), so the whole workspace uses a
//! nanosecond-resolution integer clock. Integers keep event ordering exact and
//! reproducible; conversions to floating-point seconds are provided for
//! reporting only.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since the start of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Build an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Build an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Build an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Build an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Build an instant from fractional seconds (saturating at zero for
    /// negative inputs).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).as_nanos())
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Build a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Build a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Build a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Build a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Build a duration from fractional seconds. Negative or NaN inputs clamp
    /// to zero; overly large inputs clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(if s.is_finite() { 0 } else { u64::MAX });
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    pub const fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 3_500_000_000);
        assert_eq!(t.as_secs_f64(), 3.5);
        assert_eq!(t - SimTime::from_secs(1), SimDuration::from_millis(2500));
    }

    #[test]
    fn duration_from_secs_f64_handles_edges() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9), SimDuration::from_nanos(1));
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimTime::from_micros(10),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(10),
                SimTime::from_millis(3),
                SimTime::from_secs(1)
            ]
        );
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn scalar_multiplication() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d * 3u64, SimDuration::from_millis(30));
        assert_eq!(d * 0.5f64, SimDuration::from_millis(5));
        assert_eq!(d / 2, SimDuration::from_millis(5));
    }
}
