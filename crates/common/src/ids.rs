//! Strongly-typed identifiers.
//!
//! Every entity in the system — hosts and routers of the simulated platform,
//! peers and trackers of the P2PDC overlay, tasks, network flows, protocol
//! channels, simulated processes — gets its own newtype so that indices cannot
//! be mixed up across subsystems.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Construct from the raw index.
            pub const fn new(v: $inner) -> Self {
                $name(v)
            }

            /// The raw index.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// The raw index widened to `usize`, for container indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(v: $inner) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// A compute host (end node) of the simulated platform.
    HostId, u32, "h"
);
define_id!(
    /// Any node of the platform graph: hosts, routers, switches, DSLAMs.
    NodeId, u32, "n"
);
define_id!(
    /// A peer of the P2PDC overlay (donor of computational resources).
    PeerId, u64, "peer"
);
define_id!(
    /// A tracker of the P2PDC overlay (manages a zone of peers).
    TrackerId, u64, "tracker"
);
define_id!(
    /// A computation submitted to the environment.
    TaskId, u64, "task"
);
define_id!(
    /// A data transfer in flight on the simulated network.
    FlowId, u64, "flow"
);
define_id!(
    /// A simulated process / actor (e.g. one rank of a distributed run).
    ProcId, u32, "p"
);
define_id!(
    /// A P2PSAP channel between two peers.
    ChannelId, u64, "chan"
);

impl FlowId {
    /// Build a generation-indexed flow id: the low 32 bits address a slot in
    /// a slab flow table, the high 32 bits carry the slot's generation so a
    /// recycled slot invalidates every id handed out for its previous
    /// occupants.
    ///
    /// ```
    /// use p2p_common::FlowId;
    ///
    /// let id = FlowId::from_parts(7, 3);
    /// assert_eq!(id.slot(), 7);
    /// assert_eq!(id.generation(), 3);
    ///
    /// // Recycling slot 7 mints a different id: stale handles can't collide.
    /// assert_ne!(id, FlowId::from_parts(7, 4));
    /// ```
    pub const fn from_parts(slot: u32, generation: u32) -> FlowId {
        FlowId(((generation as u64) << 32) | slot as u64)
    }

    /// The slab slot this id addresses.
    pub const fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The slot generation this id was minted for.
    pub const fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A monotonically increasing id allocator, generic over any of the id types.
#[derive(Debug, Clone, Default)]
pub struct IdAllocator {
    next: u64,
}

impl IdAllocator {
    /// Create an allocator starting at zero.
    pub fn new() -> Self {
        Self { next: 0 }
    }

    /// Create an allocator starting at `start`.
    pub fn starting_at(start: u64) -> Self {
        Self { next: start }
    }

    /// Allocate the next raw id.
    pub fn next_raw(&mut self) -> u64 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Allocate the next id of a 64-bit id type.
    pub fn next_id<T: From<u64>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(HostId::new(3).to_string(), "h3");
        assert_eq!(PeerId::new(42).to_string(), "peer42");
        assert_eq!(TrackerId::new(7).to_string(), "tracker7");
        assert_eq!(FlowId::new(0).to_string(), "flow0");
    }

    #[test]
    fn ids_roundtrip_raw() {
        let p = PeerId::new(123);
        assert_eq!(p.raw(), 123);
        assert_eq!(p.index(), 123);
        assert_eq!(PeerId::from(123u64), p);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        let mut set = HashSet::new();
        set.insert(PeerId::new(1));
        set.insert(PeerId::new(2));
        set.insert(PeerId::new(1));
        assert_eq!(set.len(), 2);
        assert!(PeerId::new(1) < PeerId::new(2));
    }

    #[test]
    fn allocator_is_monotonic() {
        let mut alloc = IdAllocator::new();
        let a: PeerId = alloc.next_id();
        let b: PeerId = alloc.next_id();
        let c: TaskId = alloc.next_id();
        assert_eq!(a, PeerId::new(0));
        assert_eq!(b, PeerId::new(1));
        assert_eq!(c, TaskId::new(2));
    }

    #[test]
    fn flow_id_parts_round_trip() {
        let id = FlowId::from_parts(7, 3);
        assert_eq!(id.slot(), 7);
        assert_eq!(id.generation(), 3);
        assert_eq!(id.raw(), (3u64 << 32) | 7);
        let max = FlowId::from_parts(u32::MAX, u32::MAX);
        assert_eq!(max.slot(), u32::MAX);
        assert_eq!(max.generation(), u32::MAX);
        assert_ne!(FlowId::from_parts(1, 0), FlowId::from_parts(1, 1));
    }

    #[test]
    fn allocator_can_start_elsewhere() {
        let mut alloc = IdAllocator::starting_at(100);
        let a: TrackerId = alloc.next_id();
        assert_eq!(a, TrackerId::new(100));
    }
}
