//! Data sizes and link bandwidths.
//!
//! The platform descriptions in the paper mix units freely (1 Gbps NICs,
//! 10 Gbps backbones, 5–10 Mbps xDSL last miles, kilobyte-sized halo
//! exchanges); these newtypes keep the arithmetic honest. Bandwidths are in
//! bits per second, sizes in bytes, matching networking convention.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul};

/// An amount of data, in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataSize(u64);

impl DataSize {
    /// Zero bytes.
    pub const ZERO: DataSize = DataSize(0);

    /// Build from a byte count.
    pub const fn from_bytes(b: u64) -> Self {
        DataSize(b)
    }

    /// Build from binary kilobytes (KiB).
    pub const fn from_kib(k: u64) -> Self {
        DataSize(k * 1024)
    }

    /// Build from binary megabytes (MiB).
    pub const fn from_mib(m: u64) -> Self {
        DataSize(m * 1024 * 1024)
    }

    /// Byte count.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Bit count.
    pub const fn bits(self) -> u64 {
        self.0 * 8
    }
}

impl Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0 + rhs.0)
    }
}

impl AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for DataSize {
    type Output = DataSize;
    fn mul(self, rhs: u64) -> DataSize {
        DataSize(self.0 * rhs)
    }
}

impl Sum for DataSize {
    fn sum<I: Iterator<Item = DataSize>>(iter: I) -> Self {
        DataSize(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 < 1024 {
            write!(f, "{}B", self.0)
        } else if self.0 < 1024 * 1024 {
            write!(f, "{:.2}KiB", b / 1024.0)
        } else if self.0 < 1024 * 1024 * 1024 {
            write!(f, "{:.2}MiB", b / (1024.0 * 1024.0))
        } else {
            write!(f, "{:.2}GiB", b / (1024.0 * 1024.0 * 1024.0))
        }
    }
}

/// A link bandwidth, in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Build from raw bits per second.
    pub fn from_bps(b: f64) -> Self {
        assert!(
            b >= 0.0 && b.is_finite(),
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(b)
    }

    /// Build from kilobits per second (10^3 bits/s).
    pub fn from_kbps(k: f64) -> Self {
        Bandwidth::from_bps(k * 1e3)
    }

    /// Build from megabits per second (10^6 bits/s).
    pub fn from_mbps(m: f64) -> Self {
        Bandwidth::from_bps(m * 1e6)
    }

    /// Build from gigabits per second (10^9 bits/s).
    pub fn from_gbps(g: f64) -> Self {
        Bandwidth::from_bps(g * 1e9)
    }

    /// Bits per second.
    pub fn bps(self) -> f64 {
        self.0
    }

    /// Bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0 / 8.0
    }

    /// Serialization time of `size` at this bandwidth. A zero bandwidth yields
    /// [`SimDuration::MAX`] (the transfer never completes).
    pub fn transfer_time(self, size: DataSize) -> SimDuration {
        if self.0 <= 0.0 {
            return SimDuration::MAX;
        }
        SimDuration::from_secs_f64(size.bits() as f64 / self.0)
    }

    /// The smaller of two bandwidths (used to find a route's bottleneck).
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2}Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2}Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_size_conversions() {
        assert_eq!(DataSize::from_kib(2).bytes(), 2048);
        assert_eq!(DataSize::from_mib(1).bytes(), 1 << 20);
        assert_eq!(DataSize::from_bytes(10).bits(), 80);
        assert_eq!(
            DataSize::from_kib(1) + DataSize::from_bytes(24),
            DataSize::from_bytes(1048)
        );
    }

    #[test]
    fn data_size_display() {
        assert_eq!(DataSize::from_bytes(100).to_string(), "100B");
        assert_eq!(DataSize::from_kib(1).to_string(), "1.00KiB");
        assert_eq!(DataSize::from_mib(3).to_string(), "3.00MiB");
    }

    #[test]
    fn bandwidth_transfer_time() {
        // 1 Gbps moving 125 MB takes exactly one second.
        let bw = Bandwidth::from_gbps(1.0);
        let size = DataSize::from_bytes(125_000_000);
        assert_eq!(bw.transfer_time(size), SimDuration::from_secs(1));
        // 9600 bytes over 100 Mbps = 768 microseconds.
        let t = Bandwidth::from_mbps(100.0).transfer_time(DataSize::from_bytes(9600));
        assert_eq!(t, SimDuration::from_micros(768));
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        let bw = Bandwidth::from_bps(0.0);
        assert_eq!(bw.transfer_time(DataSize::from_bytes(1)), SimDuration::MAX);
    }

    #[test]
    fn bandwidth_min_and_display() {
        let a = Bandwidth::from_mbps(100.0);
        let b = Bandwidth::from_gbps(1.0);
        assert_eq!(a.min(b), a);
        assert_eq!(b.to_string(), "1.00Gbps");
        assert_eq!(Bandwidth::from_kbps(512.0).to_string(), "512.00Kbps");
    }

    #[test]
    fn data_size_sums() {
        let total: DataSize = (0..4).map(|_| DataSize::from_bytes(100)).sum();
        assert_eq!(total, DataSize::from_bytes(400));
    }
}
