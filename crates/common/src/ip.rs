//! IPv4-style addresses and the IP-based proximity metric.
//!
//! The P2PDC hybrid topology manager (paper §III-A.2) measures the proximity
//! of two nodes as the length of the longest common prefix of their IP
//! addresses: with P1 = 145.82.1.1, P2 = 145.82.1.129 and P3 = 145.83.56.74,
//! the common prefix of P1/P2 is 24 bits while P1/P3 share only 15 bits, so
//! P1 considers P2 closer than P3. The metric uses only local information and
//! consumes no network resources, which is why the paper prefers it over RTT
//! or AS-path metrics.

use crate::error::CommonError;
use crate::rng::DetRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4-style 32-bit address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IpAddr(pub u32);

impl IpAddr {
    /// Build an address from its four dotted-quad octets.
    pub const fn from_octets(a: u8, b: u8, c: u8, d: u8) -> Self {
        IpAddr(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Build an address from a raw 32-bit value.
    pub const fn from_u32(v: u32) -> Self {
        IpAddr(v)
    }

    /// The raw 32-bit value.
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// The four dotted-quad octets.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }

    /// Length, in bits, of the longest common prefix between two addresses.
    ///
    /// This is the proximity measure of paper §III-A.2: larger means closer.
    pub const fn common_prefix_len(self, other: IpAddr) -> u32 {
        (self.0 ^ other.0).leading_zeros()
    }

    /// Proximity of `self` to `other` (alias of [`IpAddr::common_prefix_len`],
    /// named after the paper's terminology).
    pub const fn proximity(self, other: IpAddr) -> u32 {
        self.common_prefix_len(other)
    }

    /// Among `candidates`, return the index of the address closest to `self`
    /// (largest common prefix), breaking ties by the smallest absolute
    /// numerical distance and then by address order so the choice is
    /// deterministic. Returns `None` if `candidates` is empty.
    pub fn closest_index(self, candidates: &[IpAddr]) -> Option<usize> {
        candidates
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| {
                let prox = self.common_prefix_len(c);
                let dist = self.0.abs_diff(c.0);
                // Sort by decreasing proximity, then increasing numeric distance.
                (u32::MAX - prox, dist, c.0)
            })
            .map(|(i, _)| i)
    }

    /// Draw a uniformly random address inside the `/prefix_len` network that
    /// contains `base`.
    pub fn random_in_subnet(base: IpAddr, prefix_len: u32, rng: &mut DetRng) -> IpAddr {
        assert!(prefix_len <= 32, "prefix length must be at most 32");
        if prefix_len == 32 {
            return base;
        }
        let host_bits = 32 - prefix_len;
        let mask: u32 = if prefix_len == 0 {
            0
        } else {
            u32::MAX << host_bits
        };
        let host: u32 = if host_bits == 32 {
            rng.gen_u32()
        } else {
            rng.gen_u32() & !mask
        };
        IpAddr((base.0 & mask) | host)
    }
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl FromStr for IpAddr {
    type Err = CommonError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(CommonError::ParseIp(s.to_string()));
        }
        let mut octets = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            octets[i] = p
                .parse::<u8>()
                .map_err(|_| CommonError::ParseIp(s.to_string()))?;
        }
        Ok(IpAddr::from_octets(
            octets[0], octets[1], octets[2], octets[3],
        ))
    }
}

/// Sequential allocator of addresses inside a subnet, used by the topology
/// builders to hand out addresses whose prefix structure mirrors the physical
/// layout (same DSLAM ⇒ same /24, same petal ⇒ same /16, …).
#[derive(Debug, Clone)]
pub struct SubnetAllocator {
    base: u32,
    next_host: u32,
    host_bits: u32,
}

impl SubnetAllocator {
    /// Create an allocator for the `/prefix_len` network containing `base`.
    /// The network address itself (host part zero) is skipped.
    pub fn new(base: IpAddr, prefix_len: u32) -> Self {
        assert!(prefix_len < 32, "subnet must have room for hosts");
        let host_bits = 32 - prefix_len;
        let mask = u32::MAX << host_bits;
        SubnetAllocator {
            base: base.0 & mask,
            next_host: 1,
            host_bits,
        }
    }

    /// Allocate the next address, or `None` if the subnet is exhausted.
    // Not an `Iterator`: allocation is fallible state mutation, and renaming
    // the established public method would break every caller.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<IpAddr> {
        let capacity = if self.host_bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.host_bits) - 1
        };
        if self.next_host > capacity {
            return None;
        }
        let addr = IpAddr(self.base | self.next_host);
        self.next_host += 1;
        Some(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_from_section_3a2() {
        // The exact worked example from the paper.
        let p1: IpAddr = "145.82.1.1".parse().unwrap();
        let p2: IpAddr = "145.82.1.129".parse().unwrap();
        let p3: IpAddr = "145.83.56.74".parse().unwrap();
        assert_eq!(p1.common_prefix_len(p2), 24);
        assert_eq!(p1.common_prefix_len(p3), 15);
        assert!(
            p1.proximity(p2) > p1.proximity(p3),
            "P2 must be closer to P1 than P3"
        );
    }

    #[test]
    fn prefix_len_is_symmetric_and_reflexive() {
        let a = IpAddr::from_octets(10, 0, 0, 1);
        let b = IpAddr::from_octets(10, 0, 0, 2);
        assert_eq!(a.common_prefix_len(b), b.common_prefix_len(a));
        assert_eq!(a.common_prefix_len(a), 32);
    }

    #[test]
    fn parse_and_display_roundtrip() {
        let addr: IpAddr = "192.168.17.254".parse().unwrap();
        assert_eq!(addr.to_string(), "192.168.17.254");
        assert_eq!(addr.octets(), [192, 168, 17, 254]);
    }

    #[test]
    fn parse_rejects_malformed_addresses() {
        assert!("1.2.3".parse::<IpAddr>().is_err());
        assert!("1.2.3.4.5".parse::<IpAddr>().is_err());
        assert!("1.2.3.256".parse::<IpAddr>().is_err());
        assert!("a.b.c.d".parse::<IpAddr>().is_err());
        assert!("".parse::<IpAddr>().is_err());
    }

    #[test]
    fn closest_index_prefers_longest_prefix() {
        let me: IpAddr = "145.82.1.1".parse().unwrap();
        let candidates: Vec<IpAddr> = ["145.83.56.74", "145.82.1.129", "200.1.1.1"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        assert_eq!(me.closest_index(&candidates), Some(1));
        assert_eq!(me.closest_index(&[]), None);
    }

    #[test]
    fn closest_index_breaks_ties_deterministically() {
        let me = IpAddr::from_octets(10, 0, 0, 100);
        // Both candidates share the same /24 with `me`.
        let c1 = IpAddr::from_octets(10, 0, 0, 96); // prefix 27 with 100
        let c2 = IpAddr::from_octets(10, 0, 0, 101);
        let got = me.closest_index(&[c1, c2]).unwrap();
        assert_eq!(got, 1, "the numerically nearer /24 sibling should win");
    }

    #[test]
    fn random_in_subnet_stays_in_subnet() {
        let mut rng = DetRng::new(7);
        let base: IpAddr = "172.16.0.0".parse().unwrap();
        for _ in 0..200 {
            let a = IpAddr::random_in_subnet(base, 12, &mut rng);
            assert!(a.common_prefix_len(base) >= 12, "{a} not in 172.16/12");
        }
        // /32 returns the base itself.
        assert_eq!(IpAddr::random_in_subnet(base, 32, &mut rng), base);
    }

    #[test]
    fn subnet_allocator_hands_out_distinct_addresses() {
        let mut alloc = SubnetAllocator::new("10.1.2.0".parse().unwrap(), 24);
        let a = alloc.next().unwrap();
        let b = alloc.next().unwrap();
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "10.1.2.1");
        assert_eq!(b.to_string(), "10.1.2.2");
        assert_eq!(a.common_prefix_len(b), 24 + 6);
    }

    #[test]
    fn subnet_allocator_exhausts() {
        let mut alloc = SubnetAllocator::new("10.1.2.0".parse().unwrap(), 30);
        assert!(alloc.next().is_some());
        assert!(alloc.next().is_some());
        assert!(alloc.next().is_some());
        assert!(
            alloc.next().is_none(),
            "a /30 has only 3 usable host ids here"
        );
    }
}
