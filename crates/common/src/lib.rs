//! # p2p-common
//!
//! Shared foundational types for the `p2p-perf` workspace, a reproduction of
//! *"Performance Prediction in a Decentralized Environment for Peer-to-Peer
//! Computing"* (Cornea, Bourgeois, Nguyen, El-Baz — IPDPS 2011).
//!
//! This crate deliberately contains no simulation or protocol logic; it only
//! defines the vocabulary every other crate speaks:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`], [`SimDuration`]).
//! * [`ids`] — strongly-typed identifiers for hosts, peers, trackers, tasks, flows…
//! * [`ip`] — IPv4-style addresses and the *longest common prefix* proximity
//!   metric used by the P2PDC hybrid topology manager (paper §III-A.2).
//! * [`units`] — data sizes and bandwidths with transfer-time arithmetic.
//! * [`resources`] — the resource descriptor peers publish to their tracker
//!   (processor, memory, hard disk, current usage state — paper §III-A.1).
//! * [`rng`] — a deterministic, forkable random number generator so that every
//!   experiment in the repository is reproducible bit-for-bit.
//! * [`stats`] — online statistics and simple histograms used by benches and
//!   the tracker statistics reports.

#![warn(missing_docs)]

pub mod error;
pub mod ids;
pub mod ip;
pub mod resources;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use error::CommonError;
pub use ids::{ChannelId, FlowId, HostId, NodeId, PeerId, ProcId, TaskId, TrackerId};
pub use ip::IpAddr;
pub use resources::{PeerResources, ResourceRequirements, UsageState};
pub use rng::DetRng;
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, DataSize};
