//! Property-based tests of the shared foundational types.

use p2p_common::{Bandwidth, DataSize, DetRng, IpAddr, OnlineStats, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// The proximity metric is symmetric, reflexive and bounded by 32 bits.
    #[test]
    fn prefix_proximity_is_symmetric_and_bounded(a in any::<u32>(), b in any::<u32>()) {
        let ia = IpAddr::from_u32(a);
        let ib = IpAddr::from_u32(b);
        let ab = ia.common_prefix_len(ib);
        let ba = ib.common_prefix_len(ia);
        prop_assert_eq!(ab, ba);
        prop_assert!(ab <= 32);
        prop_assert_eq!(ia.common_prefix_len(ia), 32);
        if a != b {
            prop_assert!(ab < 32);
        }
    }

    /// Parsing the displayed form of an address gives the address back.
    #[test]
    fn ip_display_parse_roundtrip(raw in any::<u32>()) {
        let ip = IpAddr::from_u32(raw);
        let parsed: IpAddr = ip.to_string().parse().unwrap();
        prop_assert_eq!(parsed, ip);
    }

    /// Simulated-time arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_add_then_subtract_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!((t0 + dur).duration_since(t0), dur);
    }

    /// Transfer time scales linearly with size (within floating point slack).
    #[test]
    fn transfer_time_is_monotone_in_size(bytes in 1u64..1_000_000_000, mbps in 1u64..100_000) {
        let bw = Bandwidth::from_mbps(mbps as f64);
        let small = bw.transfer_time(DataSize::from_bytes(bytes));
        let large = bw.transfer_time(DataSize::from_bytes(bytes * 2));
        prop_assert!(large >= small);
        let ratio = large.as_secs_f64() / small.as_secs_f64().max(1e-12);
        prop_assert!(ratio > 1.5 && ratio < 2.5, "ratio {}", ratio);
    }

    /// Merging statistics accumulators is equivalent to a single pass.
    #[test]
    fn online_stats_merge_matches_sequential(data in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split.min(data.len());
        let mut whole = OnlineStats::new();
        whole.record_all(data.iter().copied());
        let mut left = OnlineStats::new();
        left.record_all(data[..split].iter().copied());
        let mut right = OnlineStats::new();
        right.record_all(data[split..].iter().copied());
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance()));
    }

    /// Forked deterministic RNGs reproduce their streams exactly.
    #[test]
    fn det_rng_forks_are_reproducible(seed in any::<u64>(), label in any::<u64>()) {
        let root = DetRng::new(seed);
        let mut a = root.fork(label);
        let mut b = root.fork(label);
        for _ in 0..8 {
            prop_assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }
}
